"""Unionable-table discovery: ensemble column scores + bipartite matching.

Per paper §5.1: for each column of the query table, the top-k most
unionable columns are found by an *ensemble* of four similarity measures —
column-name similarity, value set containment, numeric-range overlap, and
semantic (solo-embedding cosine) similarity — combined *before* table
alignment. Candidate tables are then aligned with a maximal bipartite
matching between the two column sets (the TUS algorithm), and the matching
score, normalised by the smaller column count, ranks the candidates.

The query is decomposed into two phases that are also the scatter units of
the sharded path (every pair score is a pure function of the two column
sketches, so the query table's sketches can be broadcast to foreign
shards):

1. :meth:`UnionDiscovery.candidate_hits_for` — per query column, the top-k
   scored candidate columns (plus, in exact mode, the per-query-column best
   score over *all* local columns, used as an optimistic alignment cap);
2. :meth:`UnionDiscovery.alignment_scores_for` — exact bipartite alignment
   of the evidence tables, visited best-evidence-first with early
   termination against the current top-k floor.

The individual measures are exposed separately to support the Relative
Recall analysis of Table 5.
"""

from __future__ import annotations

import heapq

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.core.candidates import CandidateGenerator, resolve_strategy
from repro.core.profiler import DESketch, Profile
from repro.relational.stats import numeric_overlap
from repro.text.similarity import cached_name_similarity, jaccard_containment

#: The four component measures of the ensemble.
UNION_MEASURES = ("name", "containment", "numeric", "semantic")


class UnionDiscovery:
    """Top-k unionable-table search over a profile.

    ``strategy="indexed"`` generates per-query-column candidates from the
    index-backed :class:`~repro.core.candidates.CandidateGenerator` (one
    probe per ensemble measure) instead of scoring every column of every
    other table; ``strategy="exact"`` is the brute-force oracle. Either way
    candidate tables are aligned with the exact bipartite matching.

    ``early_termination=False`` disables the alignment pruning (every
    evidence table's matrix is fully scored and matched) — the oracle the
    bound-tightening tests compare against; results are provably identical.
    """

    def __init__(
        self,
        profile: Profile,
        weights: dict[str, float] | None = None,
        candidate_k: int = 10,
        candidates: CandidateGenerator | None = None,
        strategy: str | None = None,
        early_termination: bool = True,
    ):
        self.profile = profile
        self.weights = weights or {m: 1.0 for m in UNION_MEASURES}
        unknown = set(self.weights) - set(UNION_MEASURES)
        if unknown:
            raise ValueError(f"unknown union measures: {sorted(unknown)}")
        self.candidate_k = candidate_k
        self.candidates = candidates
        self.strategy = resolve_strategy(strategy, candidates)
        self.early_termination = early_termination

    # -------------------------------------------------------- column scores

    def column_scores_sketches(self, sa: DESketch, sb: DESketch) -> dict[str, float]:
        """All four measure scores for one column-sketch pair.

        A pure pair function: either sketch may be foreign (profiled on
        another shard) — the sharded union path relies on this to score a
        broadcast query column against shard-local candidates.
        """
        scores = {
            "name": cached_name_similarity(sa.column_name, sb.column_name),
            "containment": max(
                jaccard_containment(sa.value_set, sb.value_set),
                jaccard_containment(sb.value_set, sa.value_set),
            ),
            "numeric": numeric_overlap(sa.numeric, sb.numeric),
            "semantic": self._cosine(sa.content_embedding, sb.content_embedding),
        }
        return scores

    def column_scores(self, col_a: str, col_b: str) -> dict[str, float]:
        """All four measure scores for one column pair."""
        return self.column_scores_sketches(
            self.profile.columns[col_a], self.profile.columns[col_b]
        )

    def _combine(self, scores: dict[str, float]) -> float:
        """Weighted mean of precomputed measure scores (CMDL's combination)."""
        total_weight = sum(self.weights.values())
        return sum(self.weights[m] * scores[m] for m in self.weights) / total_weight

    def ensemble_score(self, col_a: str, col_b: str) -> float:
        """Weighted mean of the four measures (CMDL's combination)."""
        return self._combine(self.column_scores(col_a, col_b))

    def single_measure_score(self, col_a: str, col_b: str, measure: str) -> float:
        if measure not in UNION_MEASURES:
            raise ValueError(f"unknown measure {measure!r}")
        return self.column_scores(col_a, col_b)[measure]

    @staticmethod
    def _cosine(a: np.ndarray, b: np.ndarray) -> float:
        na, nb = np.linalg.norm(a), np.linalg.norm(b)
        if na == 0 or nb == 0:
            return 0.0
        return float(np.dot(a, b) / (na * nb))

    # --------------------------------------------------------- pair scoring

    def _pair_scorer(self, measure: str | None, pair_cache: dict | None):
        """A ``(query sketch, candidate id) -> score`` function over a memo.

        ``pair_cache`` holds the 4-measure dicts keyed by the id pair, so
        candidate generation and alignment — possibly separate calls in the
        sharded flow — score each pair at most once per cache lifetime.
        """
        cache = {} if pair_cache is None else pair_cache

        def pair_measures(qs: DESketch, candidate: str) -> dict[str, float]:
            key = (qs.de_id, candidate)
            found = cache.get(key)
            if found is None:
                found = self.column_scores_sketches(
                    qs, self.profile.columns[candidate]
                )
                cache[key] = found
            return found

        def pair_score(qs: DESketch, candidate: str) -> float:
            scores = pair_measures(qs, candidate)
            return scores[measure] if measure is not None else self._combine(scores)

        return pair_score

    # ---------------------------------------------------------- table query

    def candidate_hits_for(
        self,
        query_sketches: list[DESketch],
        measure: str | None = None,
        pair_cache: dict | None = None,
    ) -> tuple[dict[str, list[tuple[str, float]]], dict[str, float] | None]:
        """Phase 1: per query column, its top-``candidate_k`` local columns.

        Returns ``(hits, caps)``. ``hits`` maps each query column id to its
        scored ``(candidate id, score)`` list, sorted by (-score, id) and
        cut to :attr:`candidate_k`. ``caps`` — only under the exact
        strategy, where every other-table column was scored — maps each
        query column to ``max(0, best score over all local columns)``, a
        sound optimistic cap on any alignment-matrix row of that query
        column (the probe-score bound the alignment phase prunes with);
        ``None`` under the indexed strategy, whose probes are partial.
        """
        pair_score = self._pair_scorer(measure, pair_cache)
        exact = self.strategy == "exact"
        if exact:
            all_others_by_table: dict[str, list[str]] = {}
            for cid, sketch in self.profile.columns.items():
                all_others_by_table.setdefault(sketch.table_name, []).append(cid)
        hits: dict[str, list[tuple[str, float]]] = {}
        caps: dict[str, float] = {}
        for qs in query_sketches:
            if exact:
                others = [
                    cid
                    for table, ids in all_others_by_table.items()
                    if table != qs.table_name
                    for cid in ids
                ]
            else:
                # Unsorted is fine: the (-score, id) sort below canonicalises.
                others = self.candidates.union_candidates_for(qs, k=self.candidate_k)
            scored = [(oc, pair_score(qs, oc)) for oc in others]
            scored.sort(key=lambda kv: (-kv[1], kv[0]))
            if exact:
                caps[qs.de_id] = max((s for _, s in scored), default=0.0)
                caps[qs.de_id] = max(caps[qs.de_id], 0.0)
            hits[qs.de_id] = scored[: self.candidate_k]
        return hits, (caps if exact else None)

    def alignment_scores_for(
        self,
        query_sketches: list[DESketch],
        evidence: dict[str, float],
        k: int,
        row_caps: dict[str, float] | None = None,
        measure: str | None = None,
        pair_cache: dict | None = None,
    ) -> list[tuple[str, float]]:
        """Phase 2: exact bipartite alignment of the evidence tables.

        ``evidence`` maps candidate table -> best observed pair score (the
        visit-order heuristic); tables are visited best-evidence-first so
        the local top-``k`` floor rises quickly, and any table whose
        optimistic bound cannot beat the floor is skipped mid-matrix.
        ``row_caps`` (from :meth:`candidate_hits_for` under the exact
        strategy) tightens the bound's starting point from "1.0 per query
        column" to the per-column best observed score. Returns every
        computed ``(table, score)`` — pruned tables are provably outside
        the local top-``k``, so dropping them cannot change any top-``k``
        merge built from the result.
        """
        pair_score = self._pair_scorer(measure, pair_cache)
        caps = (
            [row_caps.get(qs.de_id, 1.0) for qs in query_sketches]
            if row_caps is not None else None
        )
        results: list[tuple[str, float]] = []
        top_scores: list[float] = []  # min-heap of the k best scores so far
        floor = float("-inf")
        for candidate in sorted(evidence, key=lambda t: (-evidence[t], t)):
            score = self._alignment_score(
                query_sketches, candidate, pair_score,
                floor=floor if self.early_termination else float("-inf"),
                row_caps=caps,
            )
            if score is None:
                continue  # upper bound below the floor: cannot enter the top-k
            results.append((candidate, score))
            heapq.heappush(top_scores, score)
            if len(top_scores) > k:
                heapq.heappop(top_scores)
            if len(top_scores) == k:
                floor = top_scores[0]
        return results

    def unionable_tables(
        self,
        table_name: str,
        k: int = 10,
        measure: str | None = None,
    ) -> list[tuple[str, float]]:
        """Top-k unionable tables.

        ``measure`` restricts the column scoring to one individual measure
        (Table 5's Relative Recall analysis); None uses the full ensemble.
        """
        if measure is not None and measure not in UNION_MEASURES:
            raise ValueError(f"unknown measure {measure!r}")
        if k <= 0:
            return []
        query_columns = self.profile.columns_of_table(table_name)
        if not query_columns:
            return []
        query_sketches = [self.profile.columns[cid] for cid in query_columns]

        # Per-query memo: candidate generation and alignment both score the
        # same (query column, other column) pairs, so each pair's 4-measure
        # dict is computed at most once per unionable_tables call.
        pair_cache: dict = {}
        hits, caps = self.candidate_hits_for(
            query_sketches, measure=measure, pair_cache=pair_cache
        )
        evidence: dict[str, float] = {}
        for scored in hits.values():
            for oc, s in scored:
                if s > 0:
                    table = self.profile.columns[oc].table_name
                    evidence[table] = max(evidence.get(table, 0.0), s)

        results = self.alignment_scores_for(
            query_sketches, evidence, k,
            row_caps=caps, measure=measure, pair_cache=pair_cache,
        )
        results.sort(key=lambda kv: (-kv[1], kv[0]))
        return results[:k]

    def _alignment_score(
        self,
        query_sketches: list[DESketch],
        candidate_table: str,
        pair_score,
        floor=float("-inf"),
        row_caps: list[float] | None = None,
    ) -> float | None:
        """Bipartite alignment score, or ``None`` when early-terminated.

        The matrix is filled row by row while an optimistic upper bound is
        maintained: every matched pair contributes at most its row's best
        score, unfilled rows at most their *cap* — the per-query-column best
        probe score when the exact candidate pass supplied one (every
        alignment row is a subset of the columns that pass scored), else 1.0
        (all four measures live in [0, 1]; negative cosines clip to 0 since
        matching never helps from them). As soon as the bound drops
        *strictly* below ``floor`` — the caller's current top-k cutoff — the
        remaining rows and the matching itself are skipped: the table
        provably cannot enter the top-k.
        """
        cand_columns = self.profile.columns_of_table(candidate_table)
        if not cand_columns:
            # Upper bound is exactly 0.0: prune only when strictly below.
            return 0.0 if floor <= 0.0 else None
        denom = min(len(query_sketches), len(cand_columns))
        matrix = np.zeros((len(query_sketches), len(cand_columns)))
        if row_caps is None:
            row_caps = [1.0] * len(query_sketches)
        best_case = float(sum(row_caps))
        if best_case / denom < floor:
            return None  # even the probe-score caps cannot reach the floor
        for i, qs in enumerate(query_sketches):
            for j, cc in enumerate(cand_columns):
                matrix[i, j] = pair_score(qs, cc)
            best_case += max(matrix[i].max(), 0.0) - row_caps[i]
            if best_case / denom < floor:
                return None
        rows, cols = linear_sum_assignment(-matrix)
        matched = matrix[rows, cols]
        return float(matched.sum() / denom)
