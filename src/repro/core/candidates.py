"""Shared candidate-generation layer for structured discovery.

Every structured-discovery module (:class:`~repro.core.joinability.JoinDiscovery`,
:class:`~repro.core.unionability.UnionDiscovery`,
:class:`~repro.core.pkfk.PKFKDiscovery`) routes its candidate generation
through :class:`CandidateGenerator` when running with ``strategy="indexed"``.
Instead of exact-scoring every eligible column pair (O(N²) in columns), each
query probes the sketch indexes the catalog already maintains:

* value-set LSH Ensemble — band-collision candidates for value containment
  (joins, PK-FK inclusion, the union containment measure);
* schema-name inverted indexes — column-name token and character-trigram
  probes (PK-FK name filter, the union name measure);
* numeric interval index — range-overlap probes (numeric PK-FK inclusion,
  the union numeric measure);
* content-embedding ANN forest — semantic probes (the union semantic
  measure).

The layer only *generates* candidates; exact scoring (containment, the
4-measure ensemble, inclusion checks) still runs downstream on the candidate
set, so indexed results are a subset-ranked-identically of the exact path
whenever the probes reach full recall — which they do on small lakes, where
every LSH partition falls under the full-scan limit and the ANN budget
covers the whole forest. On large lakes the probes go sub-linear and trade
a bounded amount of recall for throughput (paper §6.4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.profiler import DESketch, Profile
from repro.text.tokenizer import name_trigrams, split_identifier

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (indexes -> this)
    from repro.core.indexes import IndexCatalog

#: Strategy names understood by the structured-discovery modules.
STRATEGIES = ("indexed", "exact")


def resolve_strategy(strategy: str | None, candidates) -> str:
    """Resolve the strategy knob shared by all structured-discovery modules.

    ``None`` picks ``"indexed"`` when a generator is supplied and ``"exact"``
    otherwise, so direct construction without an index catalog keeps working.
    """
    if strategy is None:
        strategy = "indexed" if candidates is not None else "exact"
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    if strategy == "indexed" and candidates is None:
        raise ValueError("strategy='indexed' requires a CandidateGenerator")
    return strategy


class CandidateGenerator:
    """Index-backed candidate sets for join, union, and PK-FK discovery."""

    def __init__(
        self,
        profile: Profile,
        indexes: "IndexCatalog",
        probe_multiplier: int = 4,
        min_probe: int = 32,
        generation: int = 0,
    ):
        """``probe_multiplier`` scales each probe's budget relative to the
        caller's k; ``min_probe`` floors it so small-k queries keep recall.
        ``generation`` stamps the engine cache generation this snapshot was
        built under: the stacked signature matrix, eligibility masks, and
        name-probe cache all freeze the profile as of construction, so the
        engine discards the whole generator on mutation rather than patching
        it (the generation-counter invalidation protocol)."""
        self.profile = profile
        self.indexes = indexes
        self.probe_multiplier = probe_multiplier
        self.min_probe = min_probe
        self.generation = generation
        self._join_eligible = {
            cid for cid, s in profile.columns.items()
            if s.tags is not None and s.tags.join_discovery
        }
        self._pkfk_eligible = {
            cid for cid, s in profile.columns.items()
            if s.tags is not None and s.tags.pkfk_discovery
        }
        # Stacked value-set signatures for the vectorised containment
        # re-rank: one (num_columns, num_hashes) equality pass per probe
        # instead of a python-level signature comparison per pair.
        self._sig_keys = list(profile.columns)
        self._sig_index = {cid: i for i, cid in enumerate(self._sig_keys)}
        if self._sig_keys:
            self._sig_matrix = np.vstack(
                [profile.columns[c].join_signature.values for c in self._sig_keys]
            )
            self._sig_sizes = np.array(
                [profile.columns[c].join_signature.set_size for c in self._sig_keys],
                dtype=float,
            )
        else:
            self._sig_matrix = None
            self._sig_sizes = None
        self._join_mask = np.fromiter(
            (cid in self._join_eligible for cid in self._sig_keys),
            dtype=bool, count=len(self._sig_keys),
        )
        self._pkfk_mask = np.fromiter(
            (cid in self._pkfk_eligible for cid in self._sig_keys),
            dtype=bool, count=len(self._sig_keys),
        )
        self._all_mask = np.ones(len(self._sig_keys), dtype=bool)
        self._table_mask_cache: dict[str, np.ndarray] = {}
        # Widest table in the lake: the name probe over-fetches by this much
        # so same-table hits (stripped afterwards) cannot displace
        # cross-table candidates out of the top-k cut.
        self._max_table_width = max(
            (len(cols) for cols in profile.table_columns.values()), default=0
        )
        # Name probes depend only on the column *name*, the budget, and a
        # stable exclusion tag ("all" columns or only pkfk-eligible ones) —
        # cache per (tag, name, k). Per-sweep exclusions (a table scope)
        # bypass the cache.
        self._name_probe_cache: dict[tuple[str, str, int], frozenset[str]] = {}
        self._static_name_excludes: dict[str, frozenset[str]] = {
            "all": frozenset(),
            "pkfk": frozenset(set(self._sig_keys) - self._pkfk_eligible),
        }

    # ------------------------------------------------------------- probes

    def _probe_k(self, k: int) -> int:
        return max(k * self.probe_multiplier, self.min_probe)

    def _allowed_mask(self, eligibility: np.ndarray, sketch: DESketch) -> np.ndarray:
        """Boolean mask over profile column order: eligible columns outside
        the query's own table (applied *before* the containment cut so
        ineligible entries don't consume probe budget)."""
        table = sketch.table_name
        if table not in self._table_mask_cache:
            mask = np.ones(len(self._sig_keys), dtype=bool)
            for cid in self.profile.columns_of_table(table):
                mask[self._sig_index[cid]] = False
            self._table_mask_cache[table] = mask
        allowed = eligibility & self._table_mask_cache[table]
        if sketch.de_id in self._sig_index:
            allowed = allowed.copy()
            allowed[self._sig_index[sketch.de_id]] = False
        return allowed

    def _containment_probe(
        self, sketch: DESketch, k: int, allowed: np.ndarray
    ) -> set[str]:
        """Value-containment candidates, capped by a cheap signature re-rank.

        When the LSH Ensemble's partitions are big enough for banding to
        prune, the raw pool is the band-collision candidate set; otherwise
        (small lakes) every allowed column is considered. Either way the
        pool is cut to the top ``probe_k`` entries by *estimated
        max-direction containment*, computed in one vectorised pass over the
        stacked signatures. Exact set containment then runs only on the
        survivors — the sketch-then-verify pattern that turns the O(N)
        exact-scoring scan into O(probe_k) exact scoring per query.
        """
        if self._sig_matrix is None:
            return set()
        sig = sketch.join_signature
        ensemble = self.indexes.value_containment
        if ensemble.prunes:
            pool = sorted(ensemble.candidate_keys(sig))
            idx = np.fromiter(
                (self._sig_index[c] for c in pool), dtype=np.intp, count=len(pool)
            )
            idx = idx[allowed[idx]]
        else:
            idx = np.nonzero(allowed)[0]
        cap = self._probe_k(k)
        if idx.size == 0:
            return set()
        if idx.size > cap:
            jaccard = (self._sig_matrix[idx] == sig.values).mean(axis=1)
            sizes = self._sig_sizes[idx]
            smaller = np.minimum(sizes, float(sig.set_size))
            with np.errstate(divide="ignore", invalid="ignore"):
                estimate = np.where(
                    smaller > 0,
                    jaccard * (sizes + sig.set_size) / ((1.0 + jaccard) * smaller),
                    0.0,
                )
            idx = idx[np.argsort(-estimate, kind="stable")[:cap]]
        return {self._sig_keys[i] for i in idx}

    #: Query rows per chunk of the batched signature comparison; bounds the
    #: (chunk, num_columns, num_hashes) boolean intermediate to a few MB.
    BATCH_CHUNK = 64

    def _containment_probe_batch(
        self, sketches: list[DESketch], k: int, masks: list[np.ndarray]
    ) -> list[set[str]]:
        """Vectorised :meth:`_containment_probe` for many queries at once.

        One chunked ``(queries, columns, hashes)`` equality pass replaces the
        per-query numpy round-trips — the per-query overhead that otherwise
        dominates sweep-style callers (PK-FK scans every candidate PK).
        Falls back to per-query probes when banding is active, where each
        pool is already sub-linear.
        """
        if self._sig_matrix is None:
            return [set() for _ in sketches]
        if self.indexes.value_containment.prunes:
            return [
                self._containment_probe(s, k, m) for s, m in zip(sketches, masks)
            ]
        cap = self._probe_k(k)
        results: list[set[str]] = []
        sizes = self._sig_sizes[None, :]
        for start in range(0, len(sketches), self.BATCH_CHUNK):
            chunk = sketches[start : start + self.BATCH_CHUNK]
            query_values = np.vstack([s.join_signature.values for s in chunk])
            query_sizes = np.array(
                [float(s.join_signature.set_size) for s in chunk]
            )[:, None]
            jaccard = (query_values[:, None, :] == self._sig_matrix[None, :, :]).mean(
                axis=2
            )
            smaller = np.minimum(sizes, query_sizes)
            with np.errstate(divide="ignore", invalid="ignore"):
                estimate = np.where(
                    smaller > 0,
                    jaccard * (sizes + query_sizes) / ((1.0 + jaccard) * smaller),
                    0.0,
                )
            for row, mask in zip(estimate, masks[start : start + self.BATCH_CHUNK]):
                row = np.where(mask, row, -1.0)
                idx = np.argsort(-row, kind="stable")[:cap]
                results.append({self._sig_keys[i] for i in idx if row[i] >= 0.0})
        return results

    def _name_probe_raw(self, name: str, k: int, exclude: set[str]) -> frozenset[str]:
        tokens = split_identifier(name)
        grams = name_trigrams(name)
        found = {
            key
            for key, _ in self.indexes.column_schema.search(tokens, k=k,
                                                            exclude=exclude)
        }
        found |= {
            key
            for key, _ in self.indexes.column_schema_ngrams.search(grams, k=k,
                                                                   exclude=exclude)
        }
        return frozenset(found)

    def _name_probe(
        self,
        sketch: DESketch,
        k: int,
        tag: str = "all",
        extra_exclude: set[str] | None = None,
    ) -> frozenset[str]:
        """Schema-name candidates; exclusions are applied *before* the top-k
        cut so ineligible / out-of-scope columns don't consume budget.

        ``tag`` selects a stable eligibility exclusion (cacheable);
        ``extra_exclude`` carries per-sweep exclusions (a table scope) and
        bypasses the cache.
        """
        # Over-fetch by the widest table so stripping same-table hits later
        # cannot cost cross-table recall; keeps the per-name cache exact.
        k = k + self._max_table_width
        static = self._static_name_excludes[tag]
        if extra_exclude:
            return self._name_probe_raw(
                sketch.column_name, k, set(static) | extra_exclude
            )
        cache_key = (tag, sketch.column_name, k)
        if cache_key not in self._name_probe_cache:
            self._name_probe_cache[cache_key] = self._name_probe_raw(
                sketch.column_name, k, set(static)
            )
        return self._name_probe_cache[cache_key]

    def _numeric_probe(
        self,
        sketch: DESketch,
        k: int | None = None,
        threshold: float | None = None,
        exclude: set[str] | None = None,
    ) -> set[str]:
        """Numeric-range candidates ranked by the exact overlap measure.

        ``k`` caps the probe (union's per-measure budget); ``threshold``
        instead keeps everything at or above a score floor (PK-FK's numeric
        inclusion threshold), which preserves full recall for the filter.
        ``exclude`` is applied before the cut so excluded entries (the
        query's own table) don't consume probe budget.
        """
        if sketch.numeric is None:
            return set()
        return set(
            self.indexes.column_numeric.query_scored(
                sketch.numeric, k=k, threshold=threshold, exclude=exclude
            )
        )

    def _semantic_probe(
        self, sketch: DESketch, k: int, exclude: set[str] | None = None
    ) -> set[str]:
        return {
            key
            for key, _ in self.indexes.column_semantic.query(
                sketch.content_embedding, k=k, exclude=exclude
            )
        }

    def _other_table(self, candidates: set[str], sketch: DESketch) -> set[str]:
        return {
            cid for cid in candidates
            if cid != sketch.de_id
            and self.profile.columns[cid].table_name != sketch.table_name
        }

    # ------------------------------------------------------------ queries
    #
    # Each probe family has an id-based entry point (the query column lives
    # in this generator's profile) and a sketch-based ``*_for`` twin that
    # accepts a *foreign* query sketch — a column profiled on another shard.
    # Foreign sketches probe exactly like local ones: the same-table
    # exclusion falls back to table-name comparison (a foreign table has no
    # columns here), and the self-exclusion is a no-op.

    def join_candidates(self, column_id: str, k: int = 10) -> set[str]:
        """Join-eligible columns in other tables that may contain / be
        contained in ``column_id``'s value set (syntactic-join probe)."""
        return self.join_candidates_for(self.profile.columns[column_id], k=k)

    def join_candidates_for(self, sketch: DESketch, k: int = 10) -> set[str]:
        """:meth:`join_candidates` for an explicit (possibly foreign) sketch."""
        allowed = self._allowed_mask(self._join_mask, sketch)
        return self._containment_probe(sketch, k, allowed)

    def union_candidates(self, column_id: str, k: int = 10) -> set[str]:
        """Columns in other tables that may score on *any* of the union
        ensemble's four measures against ``column_id``."""
        return self.union_candidates_for(self.profile.columns[column_id], k=k)

    def union_candidates_for(self, sketch: DESketch, k: int = 10) -> set[str]:
        """:meth:`union_candidates` for an explicit (possibly foreign) sketch."""
        allowed = self._allowed_mask(self._all_mask, sketch)
        own_table = set(self.profile.columns_of_table(sketch.table_name))
        probe_k = self._probe_k(k)
        found = self._containment_probe(sketch, k, allowed)
        found |= self._name_probe(sketch, probe_k)
        found |= self._numeric_probe(sketch, k=probe_k, exclude=own_table)
        found |= self._semantic_probe(sketch, probe_k, exclude=own_table)
        return self._other_table(found, sketch)

    def _scope_restrictions(
        self, table_scope: set[str] | None
    ) -> tuple[np.ndarray, set[str]]:
        """(eligibility mask, exclusion set) restricting PK-FK probes to a
        table scope — folded into the probes *before* their top-k cuts so
        out-of-scope columns cannot evict in-scope true links."""
        if table_scope is None:
            return self._pkfk_mask, set()
        in_scope = np.fromiter(
            (self.profile.columns[c].table_name in table_scope
             for c in self._sig_keys),
            dtype=bool, count=len(self._sig_keys),
        )
        out_of_scope = {
            cid for cid, inside in zip(self._sig_keys, in_scope) if not inside
        }
        return self._pkfk_mask & in_scope, out_of_scope

    def pkfk_candidates(
        self,
        pk_column_id: str,
        k: int = 10,
        numeric_threshold: float | None = None,
        table_scope: set[str] | None = None,
    ) -> set[str]:
        """PK-FK-eligible FK candidates for one PK column.

        A true link must pass BOTH the name filter and the inclusion filter,
        but the probes are unioned (not intersected) so that a miss by one
        probe family cannot drop a true link from the candidate set.
        ``numeric_threshold`` (the caller's inclusion threshold) makes the
        numeric probe exhaustive above the floor rather than top-k capped;
        ``table_scope`` restricts candidates to a table subset.
        """
        return self.pkfk_candidates_batch(
            [pk_column_id], k=k, numeric_threshold=numeric_threshold,
            table_scope=table_scope,
        )[pk_column_id]

    def pkfk_candidates_batch(
        self,
        pk_column_ids: list[str],
        k: int = 10,
        numeric_threshold: float | None = None,
        table_scope: set[str] | None = None,
    ) -> dict[str, set[str]]:
        """:meth:`pkfk_candidates` for a whole PK sweep in one batched pass."""
        return self.pkfk_candidates_batch_for(
            [self.profile.columns[pk] for pk in pk_column_ids],
            k=k, numeric_threshold=numeric_threshold, table_scope=table_scope,
        )

    def pkfk_candidates_batch_for(
        self,
        sketches: list[DESketch],
        k: int = 10,
        numeric_threshold: float | None = None,
        table_scope: set[str] | None = None,
    ) -> dict[str, set[str]]:
        """:meth:`pkfk_candidates_batch` over explicit (possibly foreign) PK
        sketches — the scatter unit of the sharded PK-FK sweep, where every
        shard probes its local FK columns against the lake-wide PK set."""
        eligibility, scope_exclude = self._scope_restrictions(table_scope)
        masks = [self._allowed_mask(eligibility, s) for s in sketches]
        probe_k = self._probe_k(k)
        contained = self._containment_probe_batch(sketches, k, masks)
        out: dict[str, set[str]] = {}
        for sketch, found in zip(sketches, contained):
            found |= self._name_probe(
                sketch, probe_k, tag="pkfk", extra_exclude=scope_exclude or None
            )
            if numeric_threshold is not None:
                found |= self._numeric_probe(
                    sketch, threshold=numeric_threshold, exclude=scope_exclude
                )
            else:
                own_table = set(self.profile.columns_of_table(sketch.table_name))
                found |= self._numeric_probe(
                    sketch, k=probe_k, exclude=own_table | scope_exclude
                )
            found &= self._pkfk_eligible
            out[sketch.de_id] = self._other_table(found, sketch)
        return out
