"""Typed SRQL query nodes.

Every node is a frozen (hashable, equality-comparable) dataclass, so a query
tree doubles as its own cache key: the planner deduplicates shared subplans
and the batch executor memoises results simply by using nodes as dict keys.

The six primitives mirror the paper's discovery operations (§5.2):
``content_search`` / ``metadata_search`` (keyword search over either
modality), ``cross_modal`` (Doc2Table), and the structured trio
``joinable`` / ``pkfk`` / ``unionable``. Composition nodes are
:class:`Intersect` and :class:`Unite` (the DRS score-sum semantics),
:class:`Top` (rank truncation), and :class:`Then` (pipelining: feed one
result of a query into the next operator, the ``r2.[1]`` idiom of Figure 1).

:class:`OpBinder` is the *standard* pipelining binder — a declarative
"apply operator X to the chosen hit" record. Because it is a frozen
dataclass (not an opaque lambda), two pipelines built independently — via
the builder or the string parser — compare equal, which is what makes the
string front-end round-trip exactly. Arbitrary callables are also accepted
as binders for full generality, at the cost of identity-only equality.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable


class Query:
    """Base class for all SRQL AST nodes (frozen dataclass instances)."""

    __slots__ = ()

    def describe(self) -> str:
        """Compact single-line rendering (repr is the dataclass default)."""
        name = type(self).__name__
        parts = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)
        )
        return f"{name}({parts})"


# ------------------------------------------------------------- primitives


@dataclass(frozen=True)
class ContentSearch(Query):
    """Keyword search over document (``mode='text'``) or column content."""

    value: str
    mode: str = "text"
    k: int = 10


@dataclass(frozen=True)
class MetadataSearch(Query):
    """Keyword search over metadata (titles / schema names)."""

    value: str
    mode: str = "text"
    k: int = 10


@dataclass(frozen=True)
class CrossModal(Query):
    """Tables related to a document id or free text (Q2/Q3, Doc2Table)."""

    value: str
    top_n: int = 3
    representation: str = "joint"


@dataclass(frozen=True)
class Joinable(Query):
    """Tables syntactically joinable with ``table`` (max containment)."""

    table: str
    top_n: int = 2


@dataclass(frozen=True)
class PKFK(Query):
    """Tables PK-FK-joinable with ``table`` (Q4)."""

    table: str
    top_n: int = 2


@dataclass(frozen=True)
class Unionable(Query):
    """Tables unionable with ``table`` (Q5, ensemble + alignment)."""

    table: str
    top_n: int = 2


# ------------------------------------------------------------ composition


@dataclass(frozen=True)
class Intersect(Query):
    """Ids in both operands; scores are the normalised sum (paper §5.2)."""

    left: Query
    right: Query


@dataclass(frozen=True)
class Unite(Query):
    """Ids in either operand; scores are the normalised sum."""

    left: Query
    right: Query


@dataclass(frozen=True)
class Top(Query):
    """Truncate the source result set to its first ``n`` ranks."""

    source: Query
    n: int


@dataclass(frozen=True)
class OpBinder:
    """Declarative ``Then`` binder: apply ``op`` to the selected hit.

    ``params`` is a canonically-sorted tuple of ``(name, value)`` keyword
    arguments for the target operator; the hit id fills the operator's
    value/table slot. Use :func:`op_binder` to construct one.
    """

    op: str
    params: tuple[tuple[str, Any], ...] = ()

    def __call__(self, hit: str) -> Query:
        return make_op(self.op, hit, **dict(self.params))


@dataclass(frozen=True)
class Then(Query):
    """Pipelining: run ``source``, take its rank-``rank`` hit (1-based),
    and evaluate ``binder(hit)`` — the next query of the chain.

    An empty / too-short source result propagates as an empty result
    rather than an error (a discovery chain that finds nothing upstream
    finds nothing downstream).
    """

    source: Query
    binder: Callable[[str], Any]
    rank: int = 1


# ------------------------------------------------------ operator registry


@dataclass(frozen=True)
class OpSpec:
    """One discovery primitive: node class, value slot, keyword params."""

    name: str
    node: type
    value_field: str
    params: tuple[str, ...]


#: Canonical operator name -> spec, for the builder, parser, and planner.
OPERATORS: dict[str, OpSpec] = {
    "content_search": OpSpec("content_search", ContentSearch, "value", ("mode", "k")),
    "metadata_search": OpSpec(
        "metadata_search", MetadataSearch, "value", ("mode", "k")
    ),
    "cross_modal": OpSpec(
        "cross_modal", CrossModal, "value", ("top_n", "representation")
    ),
    "joinable": OpSpec("joinable", Joinable, "table", ("top_n",)),
    "pkfk": OpSpec("pkfk", PKFK, "table", ("top_n",)),
    "unionable": OpSpec("unionable", Unionable, "table", ("top_n",)),
}

#: Alternate spellings accepted by the parser and ``make_op`` (the paper
#: writes ``crossModal_search``; snake_case variants are natural in python).
OPERATOR_ALIASES: dict[str, str] = {
    "crossmodal_search": "cross_modal",
    "cross_modal_search": "cross_modal",
    "crossmodal": "cross_modal",
}

#: Node class -> canonical operator name (for the planner and serializer).
NODE_OPS: dict[type, str] = {spec.node: name for name, spec in OPERATORS.items()}


def canonical_op(name: str) -> str:
    """Resolve an operator name or alias; raise ``ValueError`` if unknown."""
    key = name.lower()
    key = OPERATOR_ALIASES.get(key, key)
    if key not in OPERATORS:
        raise ValueError(
            f"unknown SRQL operator {name!r}; expected one of "
            f"{sorted(OPERATORS)}"
        )
    return key


def make_op(name: str, value: str, **params: Any) -> Query:
    """Construct a primitive node from its operator name.

    ``value`` fills the operator's query slot (search text, document id, or
    table name); ``params`` are the operator's keyword arguments.
    """
    spec = OPERATORS[canonical_op(name)]
    unknown = set(params) - set(spec.params)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for SRQL operator "
            f"{spec.name!r}; expected a subset of {list(spec.params)}"
        )
    return spec.node(**{spec.value_field: value}, **params)


def op_binder(name: str, **params: Any) -> OpBinder:
    """The standard ``Then`` binder for operator ``name``.

    Parameters are canonically sorted so binders built via the chainable
    builder and via the string parser compare equal.
    """
    spec = OPERATORS[canonical_op(name)]
    unknown = set(params) - set(spec.params)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for SRQL operator "
            f"{spec.name!r}; expected a subset of {list(spec.params)}"
        )
    return OpBinder(spec.name, tuple(sorted(params.items())))
