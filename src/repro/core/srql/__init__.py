"""SRQL — the declarative discovery query layer (paper §5.2, Figure 1).

Discovery requests are expressed as composable query trees instead of
imperative calls into :class:`~repro.core.discovery.DiscoveryEngine`
internals. The subsystem has four stages:

* :mod:`~repro.core.srql.ast` — typed, immutable query nodes: the six
  discovery primitives plus ``Intersect`` / ``Unite`` / ``Then`` pipelining
  and ``Top`` truncation;
* :mod:`~repro.core.srql.builder` — the lazy chainable :class:`Q` API, e.g.
  ``Q.content_search("thymidylate synthase").cross_modal().pkfk().top(2)``;
* :mod:`~repro.core.srql.planner` — validates a query against the fitted
  profile, picks ``indexed`` vs ``exact`` per structured operator via a
  size/density heuristic, and deduplicates shared subplans;
* :mod:`~repro.core.srql.executor` — runs plans against a
  :class:`~repro.core.discovery.DiscoveryEngine`, with a batch path that
  groups same-operator queries and amortises the PK-FK sweep.

:mod:`~repro.core.srql.parser` is the string front-end: it parses the
paper's ``SELECT * FROM lake WHERE joinable('drugs')``-style examples into
the same AST (and :func:`to_srql` serialises any standard query back).
"""

from repro.core.srql.ast import (
    ContentSearch,
    CrossModal,
    Intersect,
    Joinable,
    MetadataSearch,
    OpBinder,
    PKFK,
    Query,
    Then,
    Top,
    Unionable,
    Unite,
    make_op,
    op_binder,
)
from repro.core.srql.builder import Q
from repro.core.srql.parser import SRQLSyntaxError, parse_srql, to_srql
from repro.core.srql.planner import Planner, PlanNode, QueryPlan, choose_strategy
from repro.core.srql.executor import ExecutionStats, Executor

__all__ = [
    "Q",
    "Query",
    "ContentSearch",
    "MetadataSearch",
    "CrossModal",
    "Joinable",
    "PKFK",
    "Unionable",
    "Intersect",
    "Unite",
    "Then",
    "Top",
    "OpBinder",
    "op_binder",
    "make_op",
    "parse_srql",
    "to_srql",
    "SRQLSyntaxError",
    "Planner",
    "PlanNode",
    "QueryPlan",
    "choose_strategy",
    "Executor",
    "ExecutionStats",
]
