"""String front-end: the paper's SRQL surface syntax.

Parses ``SELECT * FROM lake WHERE <expression>`` strings into the same AST
the :class:`~repro.core.srql.builder.Q` builder produces, so both fronts
share the planner and executor. The expression grammar::

    expr    := pipe ((AND | OR) pipe)*        # AND -> Intersect, OR -> Unite
    pipe    := primary tail*
    tail    := THEN opcall [AT <int>]         # pipelining (rank, 1-based)
             | TOP <int>                      # rank truncation
    primary := opcall | '(' expr ')'
    opcall  := name '(' [value [, kw=v ...]] ')'

Operator names match the python API (``content_search``, ``cross_modal``,
``joinable``, ``pkfk``, ``unionable``, ...) plus the paper's spellings
(``crossModal_search``). Keywords are case-insensitive; the ``SELECT ...
WHERE`` prologue is optional — a bare expression is also accepted.

:func:`to_srql` is the inverse: it serialises any query whose pipeline hops
are standard (:class:`~repro.core.srql.ast.OpBinder`) back to a string that
parses to an equal AST — the round-trip property the parity suite asserts.
Queries pipelined through opaque python callables have no string form.

Examples::

    SELECT * FROM lake WHERE content_search('thymidylate synthase', k=3)
    SELECT * FROM lake WHERE joinable('drugs') AND unionable('drugs') TOP 2
    SELECT * FROM lake WHERE content_search('synthase')
        THEN crossModal_search(top_n=3) THEN pkfk(top_n=2) AT 1 TOP 2
"""

from __future__ import annotations

import re
from typing import Any

from repro.core.srql.ast import (
    NODE_OPS,
    OPERATORS,
    Intersect,
    OpBinder,
    Query,
    Then,
    Top,
    Unite,
    make_op,
    op_binder,
)


class SRQLSyntaxError(ValueError):
    """A malformed SRQL string (message carries the offending position)."""


_TOKEN = re.compile(
    r"""\s*(?:
        (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
      | (?P<punct>[(),=*])
    )""",
    re.VERBOSE,
)

_KEYWORDS = {"select", "from", "where", "and", "or", "then", "top", "at"}


def _tokenize(text: str) -> list[tuple[str, Any, int]]:
    tokens: list[tuple[str, Any, int]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise SRQLSyntaxError(
                    f"unexpected character {text[pos:].strip()[0]!r} at "
                    f"position {pos} in SRQL string"
                )
            break
        pos = match.end()
        if match.lastgroup == "string":
            raw = match.group("string")
            value = re.sub(r"\\(.)", r"\1", raw[1:-1])
            tokens.append(("string", value, match.start()))
        elif match.lastgroup == "number":
            raw = match.group("number")
            tokens.append(("number", float(raw) if "." in raw else int(raw),
                           match.start()))
        elif match.lastgroup == "name":
            name = match.group("name")
            kind = "keyword" if name.lower() in _KEYWORDS else "name"
            tokens.append((kind, name, match.start()))
        else:
            tokens.append(("punct", match.group("punct"), match.start()))
    tokens.append(("eof", None, len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.i = 0

    # ------------------------------------------------------------ helpers

    def peek(self) -> tuple[str, Any, int]:
        return self.tokens[self.i]

    def next(self) -> tuple[str, Any, int]:
        token = self.tokens[self.i]
        self.i += 1
        return token

    def error(self, expected: str) -> SRQLSyntaxError:
        kind, value, pos = self.peek()
        got = "end of input" if kind == "eof" else f"{value!r}"
        return SRQLSyntaxError(
            f"expected {expected}, got {got} at position {pos} in SRQL string"
        )

    def accept_keyword(self, word: str) -> bool:
        kind, value, _ = self.peek()
        if kind == "keyword" and value.lower() == word:
            self.next()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"keyword {word.upper()!r}")

    def expect_punct(self, char: str) -> None:
        kind, value, _ = self.peek()
        if kind == "punct" and value == char:
            self.next()
            return
        raise self.error(f"{char!r}")

    def expect_int(self, what: str) -> int:
        kind, value, _ = self.peek()
        if kind == "number" and isinstance(value, int):
            self.next()
            return value
        raise self.error(f"an integer {what}")

    # ------------------------------------------------------------ grammar

    def parse(self) -> Query:
        if self.accept_keyword("select"):
            kind, value, _ = self.peek()
            if kind == "punct" and value == "*":
                self.next()
            elif kind == "name":
                self.next()
            else:
                raise self.error("'*' or an identifier after SELECT")
            self.expect_keyword("from")
            kind, _, _ = self.peek()
            if kind not in ("name", "keyword"):
                raise self.error("a lake identifier after FROM")
            self.next()
            self.expect_keyword("where")
        node = self.expr()
        kind, _, _ = self.peek()
        if kind != "eof":
            raise self.error("end of input")
        return node

    def expr(self) -> Query:
        node = self.pipe()
        while True:
            if self.accept_keyword("and"):
                node = Intersect(node, self.pipe())
            elif self.accept_keyword("or"):
                node = Unite(node, self.pipe())
            else:
                return node

    def pipe(self) -> Query:
        node = self.primary()
        while True:
            if self.accept_keyword("then"):
                name, _, params = self.opcall(positional=False)
                rank = self.expect_int("after AT") if self.accept_keyword("at") else 1
                node = Then(node, op_binder(name, **params), rank=rank)
            elif self.accept_keyword("top"):
                node = Top(node, self.expect_int("after TOP"))
            else:
                return node

    def primary(self) -> Query:
        kind, value, _ = self.peek()
        if kind == "punct" and value == "(":
            self.next()
            node = self.expr()
            self.expect_punct(")")
            return node
        if kind == "name":
            name, value_arg, params = self.opcall(positional=True)
            return make_op(name, value_arg, **params)
        raise self.error("an operator call or '('")

    def opcall(self, positional: bool) -> tuple[str, Any, dict[str, Any]]:
        kind, name, pos = self.next()
        if kind != "name":
            raise SRQLSyntaxError(
                f"expected an operator name, got {name!r} at position {pos}"
            )
        self.expect_punct("(")
        value_arg: Any = None
        have_value = False
        params: dict[str, Any] = {}
        while True:
            kind, value, _ = self.peek()
            if kind == "punct" and value == ")":
                self.next()
                break
            if params or have_value:
                self.expect_punct(",")
                kind, value, _ = self.peek()
            if kind == "name":
                key = self.next()[1]
                self.expect_punct("=")
                vk, vv, _ = self.peek()
                if vk not in ("string", "number"):
                    raise self.error("a literal parameter value")
                self.next()
                params[key] = vv
            elif kind in ("string", "number") and not have_value and not params:
                if not positional:
                    raise self.error(
                        "keyword parameters only (a THEN operator takes its "
                        "value from the previous stage)"
                    )
                value_arg = self.next()[1]
                have_value = True
            else:
                raise self.error("a parameter")
        if positional and not have_value:
            raise SRQLSyntaxError(
                f"operator {name!r} needs a value argument, e.g. "
                f"{name}('...') — at position {pos}"
            )
        return name, value_arg, params


def parse_srql(text: str) -> Query:
    """Parse an SRQL string (with or without the SELECT prologue)."""
    if not isinstance(text, str) or not text.strip():
        raise SRQLSyntaxError("empty SRQL string")
    return _Parser(text).parse()


# --------------------------------------------------------------- serialise


def _literal(value: Any) -> str:
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if isinstance(value, (int, float)):
        return repr(value)
    raise ValueError(f"cannot serialise literal {value!r} to SRQL")


def _opcall(name: str, value: Any, params: list[tuple[str, Any]]) -> str:
    args = [] if value is None else [_literal(value)]
    args += [f"{k}={_literal(v)}" for k, v in params]
    # The paper spells the Doc2Table operator crossModal_search; prefer it
    # in emitted strings so examples read like Figure 1.
    label = "crossModal_search" if name == "cross_modal" else name
    return f"{label}({', '.join(args)})"


def _serialise(node: Query) -> str:
    op = NODE_OPS.get(type(node))
    if op is not None:
        spec = OPERATORS[op]
        value = getattr(node, spec.value_field)
        params = [(p, getattr(node, p)) for p in spec.params]
        return _opcall(op, value, params)
    if isinstance(node, Intersect):
        return f"({_serialise(node.left)} AND {_serialise(node.right)})"
    if isinstance(node, Unite):
        return f"({_serialise(node.left)} OR {_serialise(node.right)})"
    if isinstance(node, Top):
        return f"{_serialise(node.source)} TOP {node.n}"
    if isinstance(node, Then):
        if not isinstance(node.binder, OpBinder):
            raise ValueError(
                "cannot serialise a Then with an opaque python binder; only "
                "standard OpBinder pipelines have a string form"
            )
        suffix = f" AT {node.rank}" if node.rank != 1 else ""
        return (
            f"{_serialise(node.source)} THEN "
            f"{_opcall(node.binder.op, None, list(node.binder.params))}{suffix}"
        )
    raise ValueError(f"cannot serialise SRQL node {node!r}")


def to_srql(query, prologue: bool = True) -> str:
    """Serialise a query (AST node or ``Q``) to its SRQL string form.

    The output always parses back to an equal AST. Raises ``ValueError``
    for pipelines bound with opaque callables (no declarative form).
    """
    node = getattr(query, "ast", query)
    body = _serialise(node)
    return f"SELECT * FROM lake WHERE {body}" if prologue else body
