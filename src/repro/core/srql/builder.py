"""The chainable ``Q`` builder — the blessed way to write SRQL in python.

``Q`` is lazy: it only assembles an AST; nothing touches an engine until
the query is handed to :meth:`DiscoveryEngine.discover`. Class-level calls
start a query with a primitive; instance-level calls continue it:

    Q.content_search("thymidylate synthase", k=3)      # a primitive
    Q.pkfk("drugs", top_n=2)                           # another

    (Q.content_search("thymidylate synthase")          # a pipeline:
       .cross_modal(top_n=3)                           #   Doc2Table on hit 1
       .pkfk()                                         #   PK-FK on hit 1
       .top(2))

    Q.joinable("drugs") & Q.unionable("drugs")         # intersect
    Q.joinable("drugs") | Q.unionable("drugs")         # unite

The same operator name works in both positions (``Q.pkfk("drugs")`` vs
``q.pkfk()``): on the class it builds the primitive, on an instance it
pipelines — the instance form takes *no* value argument because the value
is the chosen hit of the previous stage (``rank=`` selects which, 1-based).
Custom hops use :meth:`then` with any callable returning a ``Q`` or AST
node, e.g. ``.then(lambda hit: Q.cross_modal(hit))``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.srql.ast import (
    Intersect,
    Query,
    Then,
    Top,
    Unite,
    make_op,
    op_binder,
)


class _op:
    """Descriptor making one operator name usable both ways.

    Accessed on the class, it constructs the primitive node; accessed on an
    instance, it appends a standard pipelining hop (:class:`Then` with an
    :class:`~repro.core.srql.ast.OpBinder`).
    """

    def __init__(self, name: str):
        self.name = name

    def __get__(self, instance, owner):
        name = self.name
        if instance is None:
            def start(value: str, **params: Any) -> "Q":
                return owner(make_op(name, value, **params))
            start.__name__ = name
            start.__doc__ = f"Start a query with the {name!r} primitive."
            return start

        # rank is keyword-only: a stray positional (meant as top_n/k) must
        # not silently become the hit selector.
        def chain(*, rank: int = 1, **params: Any) -> "Q":
            return owner(Then(instance.ast, op_binder(name, **params), rank=rank))
        chain.__name__ = name
        chain.__doc__ = (
            f"Pipeline: apply {name!r} to the rank-``rank`` hit of this query."
        )
        return chain


class Q:
    """A lazy SRQL query wrapping an immutable AST node (``.ast``)."""

    __slots__ = ("ast",)

    def __init__(self, node: Query):
        if isinstance(node, Q):
            node = node.ast
        if not isinstance(node, Query):
            raise TypeError(
                f"Q wraps SRQL AST nodes, got {type(node).__name__}"
            )
        object.__setattr__(self, "ast", node)

    def __setattr__(self, name, value):
        raise AttributeError("Q objects are immutable")

    # -------------------------------------------------------- primitives
    # (class position: start a query; instance position: pipeline a hop)

    content_search = _op("content_search")
    metadata_search = _op("metadata_search")
    cross_modal = _op("cross_modal")
    joinable = _op("joinable")
    pkfk = _op("pkfk")
    unionable = _op("unionable")

    # ------------------------------------------------------- combinators

    def then(self, binder: Callable[[str], Any], rank: int = 1) -> "Q":
        """Custom pipelining hop: ``binder(hit)`` returns the next query."""
        if not callable(binder):
            raise TypeError("then() expects a callable hit -> Q/Query")
        return Q(Then(self.ast, binder, rank=rank))

    def intersect(self, other: "Q | Query") -> "Q":
        return Q(Intersect(self.ast, Q(other).ast))

    def unite(self, other: "Q | Query") -> "Q":
        return Q(Unite(self.ast, Q(other).ast))

    def top(self, n: int) -> "Q":
        return Q(Top(self.ast, n))

    __and__ = intersect
    __or__ = unite

    # -------------------------------------------------------- comparison

    def __eq__(self, other) -> bool:
        return isinstance(other, Q) and self.ast == other.ast

    def __hash__(self) -> int:
        return hash(self.ast)

    def __repr__(self) -> str:
        return f"Q({self.ast!r})"
