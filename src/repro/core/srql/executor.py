"""Plan execution against a fitted :class:`DiscoveryEngine`.

:meth:`Executor.execute` evaluates one plan; :meth:`Executor.execute_batch`
evaluates a workload and is where the query layer earns its keep:

* **subplan reuse** — results are memoised by AST node, so structurally
  equal (sub)queries anywhere in the batch are computed once (the planner
  already collapsed them to shared plan nodes);
* **operator grouping** — unique primitives are executed family by family
  (all keyword searches, then cross-modal, then each structured operator),
  keeping each index's probe machinery and caches hot instead of
  round-robining between them;
* **PK-FK sweep amortisation** — before any ``pkfk`` queries run, the
  engine's :meth:`~repro.core.discovery.DiscoveryEngine.pkfk_links` sweep
  is warmed once per strategy and every query in the batch reads from it.

:class:`ExecutionStats` records what happened (primitive evaluations
requested vs actually executed, PK-FK sweeps run) — the numbers
``benchmarks/bench_srql.py`` reports.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.discovery import DiscoveryResultSet
from repro.core.srql.ast import Intersect, Query, Then, Top, Unite
from repro.core.srql.planner import Planner, PlanNode, QueryPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.discovery import DiscoveryEngine

#: Execution order for grouped primitives in a batch: cheap keyword probes
#: first, the structured operators (with their heavier sweeps) last.
OP_ORDER = (
    "content_search",
    "metadata_search",
    "cross_modal",
    "joinable",
    "unionable",
    "pkfk",
)


@dataclass
class ExecutionStats:
    """What one execute / execute_batch call actually did."""

    #: Primitive evaluations the query trees asked for (incl. repeats).
    requested: int = 0
    #: Primitive evaluations actually run (after memoisation).
    executed: int = 0
    #: Full PK-FK sweeps run by the engine during this call.
    pkfk_sweeps: int = 0
    #: pkfk-operator queries answered from the shared sweep.
    pkfk_queries: int = 0
    #: Executed-primitive counts by operator name.
    by_op: Counter = field(default_factory=Counter)
    #: Engine cache generation the batch executed under. Lake-session
    #: mutations bump the engine's generation, so comparing this across
    #: calls makes stale-read bugs observable: two batches with the same
    #: generation ran against the same lake state. For a sharded session
    #: this is the *sum* of the per-shard generations (monotonic, and equal
    #: iff no shard mutated), with the per-shard breakdown in
    #: :attr:`shard_generations`.
    generation: int = 0
    #: Per-shard engine generations the batch executed under (sharded
    #: sessions only; empty for a monolithic engine).
    shard_generations: dict = field(default_factory=dict)
    #: Wall-clock seconds spent inside each shard's round-trips during
    #: this batch (sharded/serving sessions only). Divided by
    #: :attr:`shard_round_trips` this is the per-round-trip latency — the
    #: straggler diagnostic that attributes a slow batch to the shard (or
    #: remote worker) that stalled it.
    shard_seconds: dict = field(default_factory=dict)
    #: Round-trips issued to each shard during this batch. The in-process
    #: scatter path counts one trip per scattered primitive; the serving
    #: executor batches a whole operator group per trip, so this is how
    #: the two are compared fairly.
    shard_round_trips: dict = field(default_factory=dict)
    #: Result-cache hits/misses of this batch (serving front-ends with a
    #: cache enabled only; both stay 0 elsewhere).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Shards whose partials are missing from this batch's results
    #: because the shard stayed down past its retry budget and the server
    #: runs ``degraded="partial"`` (process-backed serving only; empty
    #: means the answers are complete).
    degraded_shards: list = field(default_factory=list)
    #: Read round-trips retried after a worker failure, and workers
    #: respawned, while this batch ran (process-backed serving only;
    #: attribution is approximate when batches overlap).
    retries: int = 0
    respawns: int = 0

    @property
    def reused(self) -> int:
        """Primitive evaluations saved by subplan/memo reuse."""
        return self.requested - self.executed


class Executor:
    """Runs validated plans against one engine."""

    def __init__(self, engine: "DiscoveryEngine", planner: Planner | None = None):
        self.engine = engine
        self.planner = planner or Planner(engine.profile)
        self.last_stats: ExecutionStats = ExecutionStats()

    # ------------------------------------------------------------- public

    def execute(self, plan: QueryPlan) -> DiscoveryResultSet:
        """Evaluate one plan; ``last_stats`` describes the run."""
        return self.execute_batch([plan])[0]

    def execute_batch(self, plans: list[QueryPlan]) -> list[DiscoveryResultSet]:
        """Evaluate a workload with memoisation, operator grouping, and a
        shared PK-FK sweep. Results are positionally aligned with ``plans``."""
        stats = ExecutionStats(generation=self.engine.generation)
        memo: dict[Query, DiscoveryResultSet] = {}

        # Group the batch's unique primitive nodes by operator. Plan nodes
        # are shared across plans (the planner's dedup), and the memo key
        # is the AST node itself, so repeats collapse here already.
        groups: dict[str, dict[Query, PlanNode]] = {op: {} for op in OP_ORDER}
        for plan in plans:
            for node in plan.nodes():
                if node.op in groups:
                    groups[node.op].setdefault(node.query, node)

        # Amortise the PK-FK sweep: one discover() pass per strategy feeds
        # every pkfk query in the batch.
        pkfk_strategies = {
            node.strategy for node in groups["pkfk"].values()
        }
        before = self.engine.pkfk_sweeps
        for strategy in sorted(s for s in pkfk_strategies if s):
            self.engine.pkfk_links(strategy=strategy)
        for op in OP_ORDER:
            for query, node in groups[op].items():
                if query not in memo:
                    memo[query] = self._run_primitive(node, stats)
        results = [self._eval(plan.root, memo, stats) for plan in plans]
        stats.pkfk_sweeps = self.engine.pkfk_sweeps - before
        self.last_stats = stats
        return results

    # ---------------------------------------------------------- internals

    def _eval(
        self,
        node: PlanNode,
        memo: dict[Query, DiscoveryResultSet],
        stats: ExecutionStats,
    ) -> DiscoveryResultSet:
        # Only primitive results are memoised: they carry the execution
        # cost, and re-walking repeated composites keeps the requested /
        # reused stats honest (re-composition is cheap dict arithmetic).
        query = node.query
        if node.op in OP_ORDER:
            stats.requested += 1
            if query not in memo:
                memo[query] = self._run_primitive(node, stats)
            return memo[query]
        if node.op in ("intersect", "unite"):
            left = self._eval(node.children[0], memo, stats)
            right = self._eval(node.children[1], memo, stats)
            result = (
                left.intersect(right) if node.op == "intersect"
                else left.unite(right)
            )
        elif node.op == "top":
            source = self._eval(node.children[0], memo, stats)
            result = DiscoveryResultSet(
                source.items[: query.n],
                operation=f"top{query.n}({source.operation})",
                inputs=source.inputs,
            )
        elif node.op == "then":
            result = self._eval_then(node, memo, stats)
        else:  # pragma: no cover - planner emits only the ops above
            raise ValueError(f"unknown plan op {node.op!r}")
        return result

    def _eval_then(self, node: PlanNode, memo, stats) -> DiscoveryResultSet:
        then: Then = node.query
        source = self._eval(node.children[0], memo, stats)
        if len(source) < then.rank:
            # Nothing upstream at that rank: empty result, with provenance.
            return DiscoveryResultSet(
                [],
                operation=f"then({source.operation})",
                inputs={"rank": then.rank, "source": source.operation},
            )
        hit = source[then.rank]
        bound = then.binder(hit)
        bound = getattr(bound, "ast", bound)
        # Dynamic queries go through the planner too: same validation, same
        # strategy choice, and the shared memo dedupes repeated targets.
        subplan = self.planner.plan(bound)
        return self._eval(subplan.root, memo, stats)

    def _run_primitive(
        self, node: PlanNode, stats: ExecutionStats
    ) -> DiscoveryResultSet:
        engine = self.engine
        query = node.query
        stats.executed += 1
        stats.by_op[node.op] += 1
        if node.op == "content_search":
            return engine.content_search(query.value, mode=query.mode, k=query.k)
        if node.op == "metadata_search":
            return engine.metadata_search(query.value, mode=query.mode, k=query.k)
        if node.op == "cross_modal":
            return engine.cross_modal_search(
                query.value, top_n=query.top_n,
                representation=query.representation,
            )
        if node.op == "joinable":
            return engine.joinable(
                query.table, top_n=query.top_n, strategy=node.strategy
            )
        if node.op == "unionable":
            return engine.unionable(
                query.table, top_n=query.top_n, strategy=node.strategy
            )
        if node.op == "pkfk":
            stats.pkfk_queries += 1
            return engine.pkfk(
                query.table, top_n=query.top_n, strategy=node.strategy
            )
        raise ValueError(f"unknown primitive op {node.op!r}")  # pragma: no cover
