"""Query planning: validation, per-operator strategy choice, subplan dedup.

The planner sits between the declarative AST and the executor. For every
query it

* **validates** the tree against the fitted profile — unknown tables,
  bad modes/representations, non-positive ``k`` / ``top_n`` / ``TOP`` /
  rank values all fail here with a clear ``ValueError`` instead of deep
  inside an engine method;
* **annotates** each structured operator (``joinable`` / ``unionable`` /
  ``pkfk``) with a physical strategy — ``indexed`` (candidate-probe) or
  ``exact`` (brute-force) — resolving ``"auto"`` with the size/density
  heuristic of :func:`choose_strategy`;
* **deduplicates** shared subplans: within one :meth:`Planner.plan_batch`
  call, structurally-equal subtrees map to the *same* :class:`PlanNode`
  object, so the executor computes each once per batch.

The heuristic captures the crossover the ROADMAP flags: at seed scale the
exact PK-FK sweep is a few milliseconds (the process-wide name-similarity
cache turns most pair checks into dict lookups), so index probes only pay
off once the eligible-pair count — ``(density x lake size)²`` — outgrows
the probe overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.discovery import check_positive
from repro.core.profiler import Profile
from repro.core.srql.ast import (
    NODE_OPS,
    OPERATORS,
    Intersect,
    OpBinder,
    Query,
    Then,
    Top,
    Unite,
)

#: Operator families with a physical (indexed vs exact) strategy choice.
STRUCTURED_OPS = ("joinable", "unionable", "pkfk")

#: Values accepted wherever a strategy knob appears (config, planner).
STRATEGY_CHOICES = ("indexed", "exact", "auto")

#: ``auto`` crossover points. Join/union exact scans are O(columns) per
#: query column; past these column counts the index probes win (the
#: candidate-layer micro-bench shows ~2x for joins already at seed scale,
#: hence the low bar). The PK-FK sweep is pair-quadratic but each pair
#: check is a cached dict lookup, so its bar is expressed in *pairs*.
JOIN_EXACT_COLUMN_LIMIT = 48
UNION_EXACT_COLUMN_LIMIT = 96
PKFK_EXACT_PAIR_LIMIT = 40_000


def validate_strategy(value: str, knob: str = "discovery_strategy") -> str:
    """Check one strategy knob; raise a ``ValueError`` naming the choices."""
    if value not in STRATEGY_CHOICES:
        raise ValueError(
            f"invalid {knob} {value!r}; allowed values are "
            f"{', '.join(repr(c) for c in STRATEGY_CHOICES)}"
        )
    return value


def validate_operator_strategies(overrides: dict | None) -> dict[str, str]:
    """Check a per-operator strategy override mapping (satellite of the
    config surface): keys must be structured operator names, values must be
    valid strategy choices."""
    if not overrides:
        return {}
    unknown = set(overrides) - set(STRUCTURED_OPS)
    if unknown:
        raise ValueError(
            f"invalid operator_strategies key(s) {sorted(unknown)}; "
            f"per-operator overrides exist for {list(STRUCTURED_OPS)}"
        )
    for op, value in overrides.items():
        validate_strategy(value, knob=f"operator_strategies[{op!r}]")
    return dict(overrides)


def choose_strategy(op: str, profile: Profile) -> str:
    """Size/density heuristic resolving ``"auto"`` for one operator.

    ``joinable`` / ``unionable``: exact scans score every eligible column
    per query column, so the eligible-column count is the size axis.
    ``pkfk``: the exact sweep checks ``eligible²`` pairs (eligible =
    pkfk-density x lake size); below :data:`PKFK_EXACT_PAIR_LIMIT` pairs
    the cached exact sweep beats the probe overhead.
    """
    if op == "joinable":
        eligible = sum(
            1 for s in profile.columns.values()
            if s.tags is not None and s.tags.join_discovery
        )
        return "indexed" if eligible > JOIN_EXACT_COLUMN_LIMIT else "exact"
    if op == "unionable":
        return (
            "indexed" if len(profile.columns) > UNION_EXACT_COLUMN_LIMIT
            else "exact"
        )
    if op == "pkfk":
        eligible = sum(
            1 for s in profile.columns.values()
            if s.tags is not None and s.tags.pkfk_discovery
        )
        return "indexed" if eligible * eligible > PKFK_EXACT_PAIR_LIMIT else "exact"
    raise ValueError(f"no strategy choice for operator {op!r}")


@dataclass
class PlanNode:
    """One evaluated step of a plan tree.

    ``query`` is the AST node (also the executor's memo key), ``op`` its
    operator label (primitive name or ``intersect`` / ``unite`` / ``top`` /
    ``then``), ``strategy`` the physical choice for structured primitives
    (``None`` elsewhere).
    """

    query: Query
    op: str
    strategy: str | None = None
    children: tuple["PlanNode", ...] = ()


@dataclass
class QueryPlan:
    """A validated, strategy-annotated plan for one query."""

    root: PlanNode
    query: Query

    def nodes(self) -> list[PlanNode]:
        """All plan nodes, deduplicated, children before parents."""
        seen: dict[int, PlanNode] = {}
        def walk(node: PlanNode) -> None:
            if id(node) in seen:
                return
            for child in node.children:
                walk(child)
            seen[id(node)] = node
        walk(self.root)
        return list(seen.values())


@dataclass
class Planner:
    """Validates queries against a fitted profile and assigns strategies.

    ``operator_strategies`` maps each structured operator to ``"indexed"``,
    ``"exact"``, or ``"auto"`` (resolved per operator by
    :func:`choose_strategy`); operators not named fall back to
    ``default_strategy``.
    """

    profile: Profile
    default_strategy: str = "auto"
    operator_strategies: dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        validate_strategy(self.default_strategy, knob="default_strategy")
        self.operator_strategies = validate_operator_strategies(
            self.operator_strategies
        )
        self._resolved: dict[str, str] = {}
        self.refresh()

    # ------------------------------------------------------------ public

    def refresh(self) -> None:
        """Re-resolve ``"auto"`` choices against the profile's current size.

        Lake sessions call this on every mutation: the size/density
        crossovers of :func:`choose_strategy` can flip as the lake grows or
        shrinks, so ``auto`` operators are re-resolved rather than frozen at
        fit time.
        """
        for op in STRUCTURED_OPS:
            choice = self.operator_strategies.get(op, self.default_strategy)
            if choice == "auto":
                choice = choose_strategy(op, self.profile)
            self._resolved[op] = choice

    def configured_for(self, op: str) -> str:
        """The configured (possibly ``"auto"``) choice for one operator."""
        return self.operator_strategies.get(op, self.default_strategy)

    def strategy_for(self, op: str) -> str:
        """The resolved (concrete) strategy for one structured operator."""
        return self._resolved[op]

    def plan(self, query: Query, _memo: dict | None = None) -> QueryPlan:
        """Validate ``query`` and produce its annotated plan tree."""
        memo = {} if _memo is None else _memo
        return QueryPlan(root=self._plan(query, memo), query=query)

    def plan_batch(self, queries: list[Query]) -> list[QueryPlan]:
        """Plan many queries with shared-subplan deduplication: equal
        subtrees across the batch share one :class:`PlanNode` object."""
        memo: dict[Query, PlanNode] = {}
        return [QueryPlan(root=self._plan(q, memo), query=q) for q in queries]

    # ---------------------------------------------------------- internals

    def _plan(self, node: Query, memo: dict) -> PlanNode:
        if not isinstance(node, Query):
            raise TypeError(
                f"expected an SRQL query node, got {type(node).__name__} "
                "(pass a Q, an AST node, or an SRQL string)"
            )
        if node in memo:
            return memo[node]
        plan = self._plan_fresh(node, memo)
        memo[node] = plan
        return plan

    def _plan_fresh(self, node: Query, memo: dict) -> PlanNode:
        op = NODE_OPS.get(type(node))
        if op is not None:
            self._validate_primitive(op, node)
            strategy = self._resolved.get(op)
            return PlanNode(query=node, op=op, strategy=strategy)
        if isinstance(node, (Intersect, Unite)):
            label = "intersect" if isinstance(node, Intersect) else "unite"
            children = (self._plan(node.left, memo), self._plan(node.right, memo))
            return PlanNode(query=node, op=label, children=children)
        if isinstance(node, Top):
            self._positive(node.n, "TOP n")
            return PlanNode(
                query=node, op="top", children=(self._plan(node.source, memo),)
            )
        if isinstance(node, Then):
            self._positive(node.rank, "Then rank")
            if not callable(node.binder):
                raise ValueError("Then binder must be callable (hit -> query)")
            if isinstance(node.binder, OpBinder):
                # Validate the hop's operator and parameters now; the bound
                # value is only known at execution time.
                spec = OPERATORS[node.binder.op]
                params = dict(node.binder.params)
                probe = spec.node(**{spec.value_field: "<hit>"}, **params)
                self._validate_primitive(node.binder.op, probe, dynamic=True)
            return PlanNode(
                query=node, op="then", children=(self._plan(node.source, memo),)
            )
        raise TypeError(f"unknown SRQL node type {type(node).__name__}")

    def _validate_primitive(self, op: str, node: Query, dynamic: bool = False):
        spec = OPERATORS[op]
        value = getattr(node, spec.value_field)
        if not isinstance(value, str):
            raise ValueError(
                f"SRQL {op}() takes a string {spec.value_field}, got {value!r}"
            )
        if op in ("content_search", "metadata_search"):
            if node.mode not in ("text", "table"):
                raise ValueError(
                    f"mode must be 'text' or 'table', got {node.mode!r}"
                )
            self._positive(node.k, "k")
        elif op == "cross_modal":
            if node.representation not in ("joint", "solo"):
                raise ValueError(
                    f"unknown representation {node.representation!r}"
                )
            self._positive(node.top_n, "top_n")
        else:  # structured trio
            self._positive(node.top_n, "top_n")
            # Literal table names are checked against the profile; tables
            # produced by a pipeline hop are validated at execution time.
            if not dynamic and node.table not in self.profile.table_columns:
                known = len(self.profile.table_columns)
                raise ValueError(
                    f"unknown table {node.table!r} in SRQL {op}() query; the "
                    f"fitted profile has {known} tables"
                )

    # The engine's shared guard, so planner-side and engine-side errors
    # can never diverge.
    _positive = staticmethod(check_positive)
