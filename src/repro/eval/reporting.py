"""Paper-style text rendering of result tables and figure series."""

from __future__ import annotations


def format_table(
    headers: list[str],
    rows: list[list[object]],
    title: str = "",
    float_digits: int = 2,
) -> str:
    """Render an aligned text table."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{float_digits}f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    points: list,
    x_attr: str = "k",
    y_attrs: tuple[str, ...] = ("precision", "recall"),
) -> str:
    """Render a PR sweep as one labelled line per point."""
    lines = [name]
    for p in points:
        x = getattr(p, x_attr)
        ys = "  ".join(f"{a}={getattr(p, a):.3f}" for a in y_attrs)
        lines.append(f"  {x_attr}={x:<4} {ys}")
    return "\n".join(lines)
