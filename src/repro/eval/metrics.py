"""Accuracy metrics (paper §6, "Evaluation Metrics")."""

from __future__ import annotations

import numpy as np


def precision_at_k(retrieved: list[str], relevant: set[str], k: int) -> float:
    """|top-k ∩ relevant| / k (0.0 for k <= 0)."""
    if k <= 0:
        return 0.0
    top = retrieved[:k]
    if not top:
        return 0.0
    hits = sum(1 for item in top if item in relevant)
    return hits / k


def recall_at_k(retrieved: list[str], relevant: set[str], k: int) -> float:
    """|top-k ∩ relevant| / |relevant| (0.0 for empty ground truth)."""
    if not relevant or k <= 0:
        return 0.0
    top = retrieved[:k]
    hits = sum(1 for item in top if item in relevant)
    return hits / len(relevant)


def precision_recall(
    retrieved: list[str], relevant: set[str], k: int
) -> tuple[float, float]:
    return precision_at_k(retrieved, relevant, k), recall_at_k(retrieved, relevant, k)


def r_precision(retrieved: list[str], relevant: set[str]) -> float:
    """Precision at k = |relevant| — equal to recall at that k (Table 3)."""
    r = len(relevant)
    if r == 0:
        return 0.0
    return precision_at_k(retrieved, relevant, r)


def relative_recall(
    found_by_measure: set[str], found_by_union: set[str]
) -> float:
    """|true matches by S| / |true matches by union of all measures| (Table 5)."""
    if not found_by_union:
        return 0.0
    return len(found_by_measure & found_by_union) / len(found_by_union)


def mean_metric(values: list[float]) -> float:
    """Mean over queries; 0.0 for an empty list."""
    return float(np.mean(values)) if values else 0.0
