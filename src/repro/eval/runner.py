"""Benchmark sweep drivers.

Each evaluator averages per-query precision/recall over the benchmark's
ground-truth queries, mirroring the paper's methodology: top-k queries for
Doc->Table (Figure 6) and unionability (Figure 7), k = |ground truth| for
syntactic joins (Table 3, "R-precision"), and a single discovery run for
PK-FK (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.benchmarks import Benchmark
from repro.eval.metrics import mean_metric, precision_at_k, recall_at_k


@dataclass(frozen=True)
class PRPoint:
    """One (k, precision, recall) sweep point averaged over queries."""

    k: int
    precision: float
    recall: float


# ------------------------------------------------------------- doc->table


def evaluate_doc_to_table(
    method,
    benchmark: Benchmark,
    k_values: tuple[int, ...] | None = None,
    max_queries: int | None = None,
) -> list[PRPoint]:
    """Sweep k for one Doc->Table method (Figure 6).

    ``method`` implements ``rank_tables(doc_id, k)``. Results outside the
    benchmark's collection scope are filtered before scoring.
    """
    ks = k_values or benchmark.k_values or (1, 5, 10)
    queries = benchmark.ground_truth.queries
    if max_queries is not None:
        queries = queries[:max_queries]
    points = []
    max_k = max(ks)
    rankings: dict[str, list[str]] = {}
    for doc_id in queries:
        items = method.rank_tables(doc_id, max_k * 3)
        items = benchmark.filter_results(items)
        rankings[doc_id] = [t for t, _ in items]
    for k in ks:
        precisions, recalls = [], []
        for doc_id in queries:
            relevant = {
                t for t in benchmark.ground_truth.relevant(doc_id)
                if benchmark.in_scope(t)
            }
            if not relevant:
                continue
            retrieved = rankings[doc_id]
            precisions.append(precision_at_k(retrieved, relevant, k))
            recalls.append(recall_at_k(retrieved, relevant, k))
        points.append(PRPoint(k, mean_metric(precisions), mean_metric(recalls)))
    return points


# ------------------------------------------------------------------ joins


def evaluate_join(
    join_fn,
    benchmark: Benchmark,
    max_queries: int | None = None,
) -> float:
    """R-precision (= recall at k = |GT|) for syntactic joins (Table 3).

    ``join_fn(column_id, k)`` returns ranked (column_id, score) pairs.
    """
    queries = benchmark.ground_truth.queries
    if max_queries is not None:
        queries = queries[:max_queries]
    scores = []
    for column_id in queries:
        relevant = benchmark.ground_truth.relevant(column_id)
        if not relevant:
            continue
        k = len(relevant)
        # Rank generously, then restrict to the benchmark's collection:
        # 2B/2C evaluate one data collection even though methods search the
        # whole lake.
        items = join_fn(column_id, k * 5)
        retrieved = [
            c for c, _ in items if benchmark.in_scope(c.split(".", 1)[0])
        ][:k]
        scores.append(precision_at_k(retrieved, relevant, k))
    return mean_metric(scores)


# ------------------------------------------------------------------ pkfk


def evaluate_pkfk(
    discovered_links: list[tuple[str, str]],
    benchmark: Benchmark,
) -> tuple[float, float]:
    """Precision/recall of a discovered PK-FK link set (Table 4).

    Links are (pk_column, fk_column) pairs; ground truth stores pk -> fks.
    """
    truth = {
        (pk, fk)
        for pk in benchmark.ground_truth.queries
        for fk in benchmark.ground_truth.relevant(pk)
    }
    found = set(discovered_links)
    if not found:
        return 0.0, 0.0
    tp = len(found & truth)
    precision = tp / len(found)
    recall = tp / len(truth) if truth else 0.0
    return precision, recall


# ------------------------------------------------------------------ union


def evaluate_union_curve(
    union_fn,
    benchmark: Benchmark,
    k_values: tuple[int, ...],
    max_queries: int | None = None,
) -> list[PRPoint]:
    """P@K / R@K curves for unionable-table discovery (Figure 7).

    ``union_fn(table_name, k)`` returns ranked (table, score) pairs.
    """
    queries = benchmark.ground_truth.queries
    if max_queries is not None:
        queries = queries[:max_queries]
    max_k = max(k_values)
    rankings = {}
    for table in queries:
        items = union_fn(table, max_k)
        items = benchmark.filter_results(items)
        rankings[table] = [t for t, _ in items]
    points = []
    for k in k_values:
        precisions, recalls = [], []
        for table in queries:
            relevant = {
                t for t in benchmark.ground_truth.relevant(table)
                if benchmark.in_scope(t)
            }
            if not relevant:
                continue
            precisions.append(precision_at_k(rankings[table], relevant, k))
            recalls.append(recall_at_k(rankings[table], relevant, k))
        points.append(PRPoint(k, mean_metric(precisions), mean_metric(recalls)))
    return points


# -------------------------------------------------------- relative recall


def union_relative_recall(
    union_discovery,
    benchmark: Benchmark,
    measures: tuple[str, ...],
    k: int = 10,
    max_queries: int | None = None,
) -> dict[str, dict[str, float]]:
    """Table 5: per-measure Relative Recall and queries-answered fraction.

    For each measure (and the full ensemble, keyed ``"ensemble"``), collect
    the true matches found across all queries; RR = |found by S| / |found by
    union of all individual measures + ensemble|.
    """
    queries = benchmark.ground_truth.queries
    if max_queries is not None:
        queries = queries[:max_queries]
    found: dict[str, set[tuple[str, str]]] = {m: set() for m in measures}
    found["ensemble"] = set()
    answered: dict[str, int] = {m: 0 for m in list(measures) + ["ensemble"]}

    def run(measure_key: str, measure_arg: str | None):
        for table in queries:
            relevant = {
                t for t in benchmark.ground_truth.relevant(table)
                if benchmark.in_scope(t)
            }
            if not relevant:
                continue
            items = union_discovery.unionable_tables(table, k=k, measure=measure_arg)
            hits = {(table, t) for t, _ in items if t in relevant}
            if hits:
                answered[measure_key] += 1
            found[measure_key].update(hits)

    for measure in measures:
        run(measure, measure)
    run("ensemble", None)

    union_found = set().union(*found.values()) if found else set()
    num_queries = sum(
        1 for t in queries
        if any(benchmark.in_scope(x) for x in benchmark.ground_truth.relevant(t))
    ) or 1
    return {
        key: {
            "relative_recall": (len(found[key] & union_found) / len(union_found))
            if union_found else 0.0,
            "queries_answered": answered[key] / num_queries,
        }
        for key in found
    }
