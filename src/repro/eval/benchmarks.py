"""The nine benchmarks of Table 2, bound to the synthetic lakes.

Each :class:`Benchmark` carries the lake, the task's ground truth, the
result scope (tables of the benchmark's data collections — results outside
the scope are ignored, since each benchmark evaluates one collection), and
the k sweep used by its figure. Lakes are generated once per process and
shared across benchmarks via a module-level cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.lakes.base import GeneratedLake
from repro.lakes.groundtruth import GroundTruth
from repro.lakes.mlopen import generate_mlopen_lake
from repro.lakes.pharma import generate_pharma_lake
from repro.lakes.ukopen import generate_ukopen_lake

#: k sweeps from Figure 6's caption.
K_SWEEP_1A = (5, 15, 25, 35, 45, 55)
K_SWEEP_1BC = (1, 2, 4, 6, 8, 10, 12, 14, 16, 18)


@dataclass
class Benchmark:
    """One benchmark row of Table 2."""

    benchmark_id: str
    task: str
    generated: GeneratedLake
    ground_truth: GroundTruth
    scope_tables: set[str] | None = None  # None = whole lake
    k_values: tuple[int, ...] = field(default_factory=tuple)
    description: str = ""

    @property
    def lake(self):
        return self.generated.lake

    def in_scope(self, table_name: str) -> bool:
        return self.scope_tables is None or table_name in self.scope_tables

    def filter_results(self, items: list[tuple[str, float]]) -> list[tuple[str, float]]:
        """Drop results outside the benchmark's data-collection scope."""
        if self.scope_tables is None:
            return items
        return [(t, s) for t, s in items if t in self.scope_tables]


@lru_cache(maxsize=None)
def _pharma(seed: int = 0) -> GeneratedLake:
    from repro.lakes.pharma import PharmaLakeConfig

    return generate_pharma_lake(PharmaLakeConfig(seed=seed))


@lru_cache(maxsize=None)
def _ukopen(seed: int = 0) -> GeneratedLake:
    from repro.lakes.ukopen import UKOpenLakeConfig

    return generate_ukopen_lake(UKOpenLakeConfig(seed=seed))


@lru_cache(maxsize=None)
def _mlopen(seed: int = 0) -> GeneratedLake:
    from repro.lakes.mlopen import MLOpenLakeConfig

    return generate_mlopen_lake(MLOpenLakeConfig(seed=seed))


# ---------------------------------------------------------------- builders


def benchmark_1a(seed: int = 0) -> Benchmark:
    """Doc->Table on UK-Open: synthetic text + govt data."""
    gen = _ukopen(seed)
    return Benchmark(
        "1A", "doc_to_table", gen, gen.ground_truth("doc_to_table"),
        scope_tables=set(gen.tables_in("govt")), k_values=K_SWEEP_1A,
        description="Synthetic text + Govt. data",
    )


def benchmark_1b(seed: int = 0) -> Benchmark:
    """Doc->Table on Pharma: PubMed + DrugBank."""
    gen = _pharma(seed)
    return Benchmark(
        "1B", "doc_to_table", gen, gen.ground_truth("doc_to_table"),
        scope_tables=set(gen.tables_in("drugbank")), k_values=K_SWEEP_1BC,
        description="PubMed + DrugBank",
    )


def benchmark_1c(seed: int = 0) -> Benchmark:
    """Doc->Table on ML-Open: Reviews + MS."""
    gen = _mlopen(seed)
    return Benchmark(
        "1C", "doc_to_table", gen, gen.ground_truth("doc_to_table"),
        scope_tables=set(gen.tables_in("ms")), k_values=K_SWEEP_1BC,
        description="Reviews + MS",
    )


def benchmark_2a(seed: int = 0) -> Benchmark:
    """Syntactic join on UK-Open (manually-annotated ground truth)."""
    gen = _ukopen(seed)
    return Benchmark(
        "2A", "syntactic_join", gen, gen.ground_truth("syntactic_join"),
        scope_tables=set(gen.tables_in("govt")),
        description="Govt. data",
    )


def benchmark_2b(seed: int = 0) -> Benchmark:
    """Syntactic join on Pharma DrugBank (brute-force ground truth)."""
    gen = _pharma(seed)
    return Benchmark(
        "2B", "syntactic_join", gen, gen.ground_truth("syntactic_join"),
        scope_tables=set(gen.tables_in("drugbank")),
        description="DrugBank",
    )


def benchmark_2c(collection: str = "ss", seed: int = 0) -> Benchmark:
    """Syntactic join on ML-Open SS/MS/LS (brute-force ground truth)."""
    if collection not in ("ss", "ms", "ls"):
        raise ValueError(f"collection must be ss|ms|ls, got {collection!r}")
    gen = _mlopen(seed)
    return Benchmark(
        f"2C-{collection.upper()}", "syntactic_join", gen,
        gen.ground_truth(f"syntactic_join:{collection}"),
        scope_tables=set(gen.tables_in(collection)),
        description=collection.upper(),
    )


def benchmark_2d(database: str = "drugbank", seed: int = 0) -> Benchmark:
    """PK-FK discovery on Pharma's three databases."""
    if database not in ("drugbank", "chembl", "chebi"):
        raise ValueError(f"database must be drugbank|chembl|chebi, got {database!r}")
    gen = _pharma(seed)
    return Benchmark(
        f"2D-{database}", "pkfk", gen, gen.ground_truth(f"pkfk:{database}"),
        scope_tables=set(gen.tables_in(database)),
        description=database,
    )


def benchmark_3a(seed: int = 0) -> Benchmark:
    """Unionability on UK-Open (families from the generator, as in D3L)."""
    gen = _ukopen(seed)
    return Benchmark(
        "3A", "union", gen, gen.ground_truth("union"),
        scope_tables=set(gen.tables_in("govt")),
        description="Govt. data",
    )


def benchmark_3b(seed: int = 0) -> Benchmark:
    """Unionability on DrugBank-Synthetic (projection/selection tables)."""
    gen = _pharma(seed)
    scope = set(gen.tables_in("drugbank_synthetic")) | set(gen.tables_in("drugbank"))
    return Benchmark(
        "3B", "union", gen, gen.ground_truth("union"),
        scope_tables=scope,
        description="DrugBank-Synthetic",
    )


BENCHMARK_BUILDERS = {
    "1A": benchmark_1a,
    "1B": benchmark_1b,
    "1C": benchmark_1c,
    "2A": benchmark_2a,
    "2B": benchmark_2b,
    "2C-SS": lambda seed=0: benchmark_2c("ss", seed),
    "2C-MS": lambda seed=0: benchmark_2c("ms", seed),
    "2C-LS": lambda seed=0: benchmark_2c("ls", seed),
    "2D-drugbank": lambda seed=0: benchmark_2d("drugbank", seed),
    "2D-chembl": lambda seed=0: benchmark_2d("chembl", seed),
    "2D-chebi": lambda seed=0: benchmark_2d("chebi", seed),
    "3A": benchmark_3a,
    "3B": benchmark_3b,
}


def build_benchmark(benchmark_id: str, seed: int = 0) -> Benchmark:
    try:
        return BENCHMARK_BUILDERS[benchmark_id](seed=seed)
    except KeyError:
        raise KeyError(
            f"unknown benchmark {benchmark_id!r}; "
            f"available: {sorted(BENCHMARK_BUILDERS)}"
        ) from None
