"""Evaluation framework: metrics, benchmark definitions, sweep runners.

Implements the paper's evaluation methodology (§6): top-k precision/recall,
R-precision (k = ground-truth size, making P = R as in Table 3), Relative
Recall (Table 5), the mQCR statistic, and the nine benchmarks of Table 2.
"""

from repro.eval.metrics import (
    precision_at_k,
    recall_at_k,
    precision_recall,
    r_precision,
    relative_recall,
)
from repro.eval.benchmarks import Benchmark, BENCHMARK_BUILDERS, build_benchmark
from repro.eval.runner import (
    evaluate_doc_to_table,
    evaluate_join,
    evaluate_pkfk,
    evaluate_union_curve,
)
from repro.eval.reporting import format_table, format_series

__all__ = [
    "precision_at_k",
    "recall_at_k",
    "precision_recall",
    "r_precision",
    "relative_recall",
    "Benchmark",
    "BENCHMARK_BUILDERS",
    "build_benchmark",
    "evaluate_doc_to_table",
    "evaluate_join",
    "evaluate_pkfk",
    "evaluate_union_curve",
    "format_table",
    "format_series",
]
