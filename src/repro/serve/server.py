"""`LakeServer`: concurrent discovery over thread- or process-hosted shards.

The server splits the two roles a session interleaves — mutation and
discovery — the way the HTAP systems in PAPERS.md isolate update
propagation from analytics (Polynesia, arXiv:2103.00798):

* **generation-pinned snapshot reads** — a query acquires the read side of
  one server-wide reader/writer lock, captures the per-shard generation
  vector, and plans *and* executes against exactly that vector. Mutations
  take the write side, so a query in flight always completes against the
  snapshot it planned under (zero torn reads), and a mutation commits to
  the next generation only once no reader can observe it mid-apply;
* **a single writer path per shard** — all mutations funnel through the
  write lock, so each shard's journal records a single totally-ordered
  history (seq allocation and the write-ahead append can never interleave
  between two writers);
* **the plan-level result cache** — per-shard partials keyed by
  ``(plan node, generation scope)``; see :mod:`repro.serve.cache`.

Two shard backends share the executor and the ops table:

* ``backend="thread"`` wraps a *live* session (monolithic or sharded)
  in-process — no serialisation cost, but every shard still shares the
  caller's GIL;
* ``backend="process"`` serves a *saved catalog* with one worker process
  per shard (:mod:`repro.serve.worker`) — per-shard CPU parallelism, RPC
  framing cost per round-trip. Corpus-wide statistics under
  ``global_stats=True`` are kept coherent by snapshot exchange: after
  every mutation the front-end re-collects the changed shards' df/N
  statistics and re-installs merged :class:`CorpusStatsGroup` views on
  every worker.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from threading import Condition, Lock

from repro.core.discovery import DiscoveryEngine, DiscoveryResultSet
from repro.core.session import LakeSession
from repro.core.sharding import STATS_FAMILIES, ShardedLakeSession, ShardRouter
from repro.core.srql.executor import ExecutionStats
from repro.core.srql.planner import Planner
from repro.serve.cache import ResultCache
from repro.serve.executor import ServingExecutor
from repro.serve.ops import ShardHost
from repro.serve.worker import ShardWorker
from repro.store.shard import ShardStore
from repro.text.pipeline import DocumentPipeline


class _RWLock:
    """Reader/writer lock with writer preference.

    Readers run concurrently; a waiting writer blocks *new* readers (no
    writer starvation) but never interrupts readers already inside — the
    mechanism behind the snapshot guarantee: in-flight queries finish
    against their pinned generations before any mutation applies.
    """

    def __init__(self):
        self._cond = Condition(Lock())
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


# ------------------------------------------------------------ thread backend


class ThreadBackend:
    """Shards served from a live session in the caller's process."""

    def __init__(self, session, owned: bool = False):
        self.session = session
        self.owned = owned
        if isinstance(session, ShardedLakeSession):
            self.sharded = True
            self.router = session.router
            self.global_stats = session.global_stats
            self.catalog = session.catalog
            self.name = session.name
            self._shard_sessions = session.shards
        else:
            self.sharded = False
            self.router = ShardRouter(1)
            self.global_stats = True  # one shard: stats are the corpus
            self.catalog = session.profile
            self.name = session.lake.name
            self._shard_sessions = [session]
        self.num_shards = len(self._shard_sessions)
        self.hosts = [ShardHost(s) for s in self._shard_sessions]
        config = (
            session.config if self.sharded else session.cmdl.config
        )
        self.default_strategy = config.discovery_strategy
        self.operator_strategies = config.operator_strategies
        self.union_candidate_k = (
            self._shard_sessions[0].engine.scorer("unionable").candidate_k
        )

    def generations(self) -> dict[int, int]:
        return {i: s.generation for i, s in enumerate(self._shard_sessions)}

    def shard_documents(self, shard: int):
        return self._shard_sessions[shard].profile.documents

    def shard_num_des(self, shard: int) -> int:
        return self._shard_sessions[shard].profile.num_des

    def round_trip(self, shard: int, ops: list) -> list:
        host = self.hosts[shard]
        with host.lock:
            return [host.handle(op, payload or {}) for op, payload in ops]

    def apply(self, op: str, payload: dict) -> None:
        """Mutations delegate to the wrapped session's own mutators: the
        session handles journaling, global-stats ripple, and routing."""
        session = self.session
        if op == "add_table":
            session.add_table(payload["table"])
        elif op == "update_table":
            session.update_table(payload["table"])
        elif op == "add_documents":
            session.add_documents(payload["documents"])
        elif op == "remove":
            session.remove(payload["name"])
        else:
            raise ValueError(f"unknown mutation op {op!r}")

    def checkpoint(self) -> None:
        if self.session._store is not None:
            self.session._store.checkpoint()

    def close(self) -> None:
        if self.owned:
            self.session.close()


# ----------------------------------------------------------- process backend


class _ShardView:
    """Front-end copy of one worker's planning catalog (lite)."""

    def __init__(self, lite: dict):
        self.update(lite)

    def update(self, lite: dict) -> None:
        self.generation = lite["generation"]
        self.table_columns = lite["table_columns"]
        self.columns = lite["columns"]
        self.documents = set(lite["documents"])
        self.num_des = lite["num_des"]


class _FrontCatalog:
    """Merged planner-facing profile over the per-shard views.

    Duck-types what :class:`~repro.core.srql.planner.Planner` and the
    gather phase read (``table_columns`` / ``columns`` / ``documents`` /
    ``columns_of_table`` / ``num_des``), merged lazily and cached against
    the generation vector — the process-backend analogue of
    :class:`~repro.core.sharding._MergedCatalog`.
    """

    def __init__(self, views: list[_ShardView]):
        self._views = views
        self._key: tuple | None = None
        self._table_columns: dict = {}
        self._columns: dict = {}
        self._documents: dict = {}

    def _sync(self) -> None:
        key = tuple(view.generation for view in self._views)
        if key == self._key:
            return
        table_columns: dict = {}
        columns: dict = {}
        documents: dict = {}
        for view in self._views:
            table_columns.update(view.table_columns)
            columns.update(view.columns)
            documents.update(dict.fromkeys(view.documents))
        self._table_columns = table_columns
        self._columns = columns
        self._documents = documents
        self._key = key

    @property
    def table_columns(self) -> dict:
        self._sync()
        return self._table_columns

    @property
    def columns(self) -> dict:
        self._sync()
        return self._columns

    @property
    def documents(self) -> dict:
        self._sync()
        return self._documents

    def columns_of_table(self, table_name: str) -> list[str]:
        return self.table_columns.get(table_name, [])

    @property
    def num_des(self) -> int:
        return len(self.documents) + len(self.columns)


class ProcessBackend:
    """Shards served by one worker process each, from a saved catalog."""

    def __init__(self, path: str | Path):
        path = Path(path)
        if not (path / "catalog.sqlite").exists():
            raise FileNotFoundError(
                f"{path} is not a saved lake catalog (no catalog.sqlite); "
                "create one with session.save(path)"
            )
        self.path = path
        self.catalog_db = ShardStore(path / "catalog.sqlite")
        kind = self.catalog_db.get_meta("kind")
        if kind not in ("monolithic", "sharded"):
            raise ValueError(f"catalog at {path} has unknown kind {kind!r}")
        self.kind = kind
        self.num_shards = int(self.catalog_db.get_meta("num_shards", "1"))
        self.name = self.catalog_db.get_meta("name", "lake")
        self._seq = int(self.catalog_db.get_meta("journal_seq", "0"))
        if kind == "sharded":
            router_state = self.catalog_db.get_state("router")
            self.router = ShardRouter(
                router_state["num_shards"],
                assignments=dict(router_state["assignments"]),
                seed=router_state["seed"],
            )
            self._top = self.catalog_db.get_state("top")
            self.global_stats = self._top["global_stats"]
            self._df_pipeline = (
                None
                if self._top["df_pipeline"] is None
                else DocumentPipeline.restore_state(self._top["df_pipeline"])
            )
        else:
            self.router = ShardRouter(1)
            self._top = None
            self.global_stats = True  # one shard: stats are the corpus
            self._df_pipeline = None
        self.workers: list[ShardWorker] = []
        self.views: list[_ShardView] = []
        self._doc_texts: dict[str, str] = {}
        try:
            self._boot()
        except BaseException:
            self.close()
            raise
        self.catalog = _FrontCatalog(self.views)
        self.default_strategy = self._lites[0]["discovery_strategy"]
        self.operator_strategies = dict(self._lites[0]["operator_strategies"])
        self.union_candidate_k = self._lites[0]["union_candidate_k"]
        self._replay()

    # --------------------------------------------------------------- boot

    def _boot(self) -> None:
        # Spawn every worker first, then collect handshakes: the shard
        # restores run concurrently across the children.
        self.workers = [
            ShardWorker(self.path / f"shard-{i:04d}.sqlite", index=i)
            for i in range(self.num_shards)
        ]
        for worker in self.workers:
            worker.wait_ready()
        self._lites = [w.call("catalog_lite") for w in self.workers]
        self.views = [_ShardView(lite) for lite in self._lites]
        self.gens = {i: view.generation for i, view in enumerate(self.views)}
        if self._ripples():
            for worker in self.workers:
                for doc_id, text in worker.call("doc_texts"):
                    self._doc_texts[doc_id] = text
        self._push_stats(range(self.num_shards))

    def _ripples(self) -> bool:
        """Whether document churn ripples across shards (corpus-wide df)."""
        return self.kind == "sharded" and self.global_stats

    def _push_stats(self, fetch_shards) -> None:
        """Re-collect ``fetch_shards``' corpus statistics and re-install
        the merged view on every worker."""
        if not (self.global_stats and self.num_shards > 1):
            return
        if not hasattr(self, "_stat_snapshots"):
            self._stat_snapshots = [None] * self.num_shards
        for i in fetch_shards:
            self._stat_snapshots[i] = self.workers[i].call("stats_snapshot")
        for i, worker in enumerate(self.workers):
            remote = {
                family: [
                    self._stat_snapshots[j][family]
                    for j in range(self.num_shards)
                    if j != i
                ]
                for family in STATS_FAMILIES
            }
            worker.call("install_stats", {"remote": remote})

    # ------------------------------------------------------------ queries

    def generations(self) -> dict[int, int]:
        return dict(self.gens)

    def shard_documents(self, shard: int):
        return self.views[shard].documents

    def shard_num_des(self, shard: int) -> int:
        return self.views[shard].num_des

    def round_trip(self, shard: int, ops: list) -> list:
        return self.workers[shard].call("batch", {"ops": list(ops)})

    # ---------------------------------------------------------- mutations

    def _route(self, op: str, payload: dict) -> int:
        if op in ("add_table", "update_table"):
            return self.router.shard_of(payload["table"].name)
        if op == "remove":
            return self.router.shard_of(payload["name"])
        if op == "add_documents":
            return self.router.shard_of(payload["documents"][0].doc_id)
        return 0

    def _next_seq(self) -> int:
        self._seq += 1
        self.catalog_db.put_meta("journal_seq", str(self._seq))
        self.catalog_db.commit()
        return self._seq

    def _absorb(self, shard: int, response: dict) -> None:
        self.gens[shard] = response["generation"]
        self.views[shard].update(response["catalog"])

    def apply(self, op: str, payload: dict, replaying: bool = False) -> None:
        if op in ("refresh", "rebalance"):
            raise NotImplementedError(
                f"{op}() is not supported on a process-backed server: it "
                "refits or repartitions whole shards; reopen the catalog "
                "in-process (repro.open_lake(path)), run it there, save, "
                "and serve again"
            )
        if op not in ("add_table", "update_table", "add_documents", "remove"):
            raise ValueError(f"unknown mutation op {op!r}")
        owner = self._route(op, payload)
        self._validate(op, payload, owner)
        seq = None
        if not replaying:
            seq = self._next_seq()
            self.workers[owner].call(
                "journal_append", {"seq": seq, "op": op, "payload": payload}
            )
        try:
            changed = self._dispatch(op, payload, owner)
        except BaseException:
            if seq is not None:
                self.workers[owner].call("journal_delete", {"seq": seq})
            raise
        self._push_stats(changed)

    def _validate(self, op: str, payload: dict, owner: int) -> None:
        """Front-end copies of the sharded session's pre-checks, raised
        before anything is journaled or shipped."""
        view = self.views[owner]
        if op == "update_table":
            name = payload["table"].name
            if name not in view.table_columns:
                raise KeyError(
                    f"lake {self.name!r} has no table {name!r} to update"
                )
        elif op == "remove":
            name = payload["name"]
            if name not in view.table_columns and name not in view.documents:
                raise KeyError(
                    f"lake {self.name!r} has no table or document {name!r}"
                )

    def _dispatch(self, op: str, payload: dict, owner: int) -> set[int]:
        """Apply one validated mutation; returns the shards whose
        generation changed (for the stats re-push)."""
        if op in ("add_table", "update_table"):
            response = self.workers[owner].call(op, {"table": payload["table"]})
            self._absorb(owner, response)
            return {owner}
        if op == "add_documents":
            documents = payload["documents"]
            by_owner: dict[int, list] = {}
            for document in documents:
                by_owner.setdefault(
                    self.router.shard_of(document.doc_id), []
                ).append(document)
            if self._ripples():
                for document in documents:
                    self._doc_texts[document.doc_id] = document.text
                self._pin_all()
            changed = set()
            for shard, batch in sorted(by_owner.items()):
                response = self.workers[shard].call(
                    "add_documents", {"documents": batch}
                )
                self._absorb(shard, response)
                changed.add(shard)
            if self._ripples():
                changed |= self._resync_siblings(skip=set(by_owner))
            return changed
        # remove: a table or a document, resolved against the owner's view
        name = payload["name"]
        is_document = name in self.views[owner].documents
        if is_document and self._ripples():
            self._doc_texts.pop(name, None)
            self._pin_all()
            response = self.workers[owner].call("remove", {"name": name})
            self._absorb(owner, response)
            return {owner} | self._resync_siblings(skip={owner})
        if is_document:
            self._doc_texts.pop(name, None)
        response = self.workers[owner].call("remove", {"name": name})
        self._absorb(owner, response)
        return {owner}

    def _pin_all(self) -> None:
        """Refit the corpus-wide df filter from the maintained text corpus
        and pin it on every worker (mirrors ``_sync_document_filter``)."""
        texts = list(self._doc_texts.values())
        self._df_pipeline.fit(texts)
        payload = {
            "common_terms": sorted(self._df_pipeline.common_terms),
            "num_docs": len(texts),
        }
        for worker in self.workers:
            worker.call("pin_filter", payload)

    def _resync_siblings(self, skip: set[int]) -> set[int]:
        changed = set()
        for i, worker in enumerate(self.workers):
            if i in skip:
                continue
            response = worker.call("resync_documents")
            if response["changed"]:
                self.gens[i] = response["generation"]
                self.views[i].generation = response["generation"]
                changed.add(i)
        return changed

    def _replay(self) -> None:
        """Re-apply any journal tail a previous writer left unsaved, in
        global seq order — the serving analogue of ``LakeStore._replay``."""
        entries: list[tuple[int, str, object]] = []
        for worker in self.workers:
            entries.extend(worker.call("journal_entries"))
        if not entries:
            return
        entries.sort(key=lambda entry: entry[0])
        for seq, op, payload in entries:
            self.apply(op, payload, replaying=True)
        self._seq = max(self._seq, entries[-1][0])

    # -------------------------------------------------------- persistence

    def checkpoint(self) -> None:
        """Fold every worker's journal into its shard file and refresh the
        manifest — the served catalog stays reopenable at any time."""
        for worker in self.workers:
            worker.call("checkpoint")
        if self._top is not None:
            top = dict(self._top)
            top["df_pipeline"] = (
                None
                if self._df_pipeline is None
                else self._df_pipeline.persistent_state()
            )
            self.catalog_db.put_state("top", top)
            self._top = top
        self.catalog_db.put_meta("journal_seq", str(self._seq))
        self.catalog_db.commit()

    def close(self) -> None:
        for worker in self.workers:
            worker.close()
        self.workers = []
        self.catalog_db.close()


# ------------------------------------------------------------------ server


class LakeServer:
    """Concurrent serving front-end over thread- or process-hosted shards.

    Construct from a live session (``backend="thread"``) or a saved
    catalog path (either backend); or call ``session.serve()``. Queries
    (:meth:`discover` / :meth:`discover_batch`) may run from many threads
    at once; mutations serialise on the writer path. See the module docs
    for the snapshot and caching contracts.
    """

    def __init__(
        self,
        source,
        backend: str = "thread",
        cache: bool = True,
        cache_entries: int = 4096,
    ):
        if backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process', got {backend!r}"
            )
        if isinstance(source, (str, Path)):
            if backend == "process":
                self.backend = ProcessBackend(source)
            else:
                from repro.store import load_catalog

                self.backend = ThreadBackend(load_catalog(source), owned=True)
        elif isinstance(source, (LakeSession, ShardedLakeSession)):
            if backend == "process":
                raise ValueError(
                    "backend='process' serves a saved catalog: call "
                    "session.save(path) then LakeServer(path, "
                    "backend='process') — or session.serve("
                    "backend='process') to do both"
                )
            self.backend = ThreadBackend(source, owned=False)
        else:
            raise TypeError(
                f"source must be a session or a catalog path, got "
                f"{type(source).__name__}"
            )
        self.cache = ResultCache(cache_entries) if cache else None
        self.planner = Planner(
            self.backend.catalog,
            default_strategy=self.backend.default_strategy,
            operator_strategies=self.backend.operator_strategies,
        )
        self._lock = _RWLock()
        self._closed = False
        workers = min(self.backend.num_shards, os.cpu_count() or 1)
        self._pool = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="lake-serve"
            )
            if workers > 1
            else None
        )
        self.last_stats: ExecutionStats = ExecutionStats()

    # ------------------------------------------------------------- reads

    def discover(self, query) -> DiscoveryResultSet:
        """Run one SRQL query against a pinned generation snapshot."""
        return self.discover_batch([query])[0]

    def discover_batch(self, queries) -> list[DiscoveryResultSet]:
        """Run an SRQL workload under one snapshot, one executor, and at
        most three batched round-trips per shard."""
        self._check_open()
        with self._lock.read():
            generations = self.backend.generations()
            executor = ServingExecutor(self, generations)
            plans = self.planner.plan_batch(
                [DiscoveryEngine._to_ast(q) for q in queries]
            )
            results = executor.execute_batch(plans)
            self.last_stats = executor.last_stats
            return results

    def map_shards(self, fn, shards: list[int]) -> None:
        """Run ``fn(shard)`` for each listed shard, concurrently when the
        server has a pool (the executor's fan-out primitive)."""
        if self._pool is not None and len(shards) > 1:
            list(self._pool.map(fn, shards))
        else:
            for shard in shards:
                fn(shard)

    # ------------------------------------------------------------ writes

    def add_table(self, table) -> None:
        self._apply("add_table", {"table": table})

    def update_table(self, table) -> None:
        self._apply("update_table", {"table": table})

    def add_document(self, document) -> None:
        self.add_documents([document])

    def add_documents(self, documents) -> None:
        self._apply("add_documents", {"documents": list(documents)})

    def remove(self, name: str) -> None:
        self._apply("remove", {"name": name})

    def _apply(self, op: str, payload: dict) -> None:
        self._check_open()
        with self._lock.write():
            self.backend.apply(op, payload)

    def checkpoint(self) -> None:
        """Durably fold outstanding journal entries into the catalog."""
        self._check_open()
        with self._lock.write():
            self.backend.checkpoint()

    # ------------------------------------------------------------- admin

    @property
    def generations(self) -> dict[int, int]:
        return self.backend.generations()

    @property
    def generation(self) -> int:
        return sum(self.backend.generations().values())

    @property
    def num_shards(self) -> int:
        return self.backend.num_shards

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("this LakeServer is closed")

    def close(self) -> None:
        """Shut down workers/pool (idempotent). A thread backend wrapping
        a caller-owned live session leaves that session open."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.backend.close()

    def __enter__(self) -> "LakeServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        kind = type(self.backend).__name__
        return (
            f"LakeServer({self.backend.name!r}, {kind}, "
            f"shards={self.backend.num_shards}, "
            f"cache={'on' if self.cache is not None else 'off'})"
        )
