"""`LakeServer`: concurrent discovery over thread- or process-hosted shards.

The server splits the two roles a session interleaves — mutation and
discovery — the way the HTAP systems in PAPERS.md isolate update
propagation from analytics (Polynesia, arXiv:2103.00798):

* **generation-pinned snapshot reads** — a query acquires the read side of
  one server-wide reader/writer lock, captures the per-shard generation
  vector, and plans *and* executes against exactly that vector. Mutations
  take the write side, so a query in flight always completes against the
  snapshot it planned under (zero torn reads), and a mutation commits to
  the next generation only once no reader can observe it mid-apply;
* **a single writer path per shard** — all mutations funnel through the
  write lock, so each shard's journal records a single totally-ordered
  history (seq allocation and the write-ahead append can never interleave
  between two writers);
* **the plan-level result cache** — per-shard partials keyed by
  ``(plan node, generation scope)``; see :mod:`repro.serve.cache`.

Two shard backends share the executor and the ops table:

* ``backend="thread"`` wraps a *live* session (monolithic or sharded)
  in-process — no serialisation cost, but every shard still shares the
  caller's GIL;
* ``backend="process"`` serves a *saved catalog* with one worker process
  per shard (:mod:`repro.serve.worker`) — per-shard CPU parallelism, RPC
  framing cost per round-trip. Corpus-wide statistics under
  ``global_stats=True`` are kept coherent by snapshot exchange: after
  every mutation the front-end re-collects the changed shards' df/N
  statistics and re-installs merged :class:`CorpusStatsGroup` views on
  every worker.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from threading import Condition, Lock

from repro.core.discovery import DiscoveryEngine, DiscoveryResultSet
from repro.core.session import LakeSession
from repro.core.sharding import STATS_FAMILIES, ShardedLakeSession, ShardRouter
from repro.core.srql.executor import ExecutionStats
from repro.core.srql.planner import Planner
from repro.serve.cache import ResultCache
from repro.serve.executor import ServingExecutor
from repro.serve.ops import ShardHost
from repro.serve.rpc import (
    FrameCorrupt,
    RemoteShardError,
    RPCError,
    ShardUnavailable,
    WorkerCrashed,
    WorkerTimeout,
)
from repro.serve.worker import ShardWorker, WorkerSupervisor
from repro.store.shard import ShardStore
from repro.text.pipeline import DocumentPipeline


class _RWLock:
    """Reader/writer lock with writer preference.

    Readers run concurrently; a waiting writer blocks *new* readers (no
    writer starvation) but never interrupts readers already inside — the
    mechanism behind the snapshot guarantee: in-flight queries finish
    against their pinned generations before any mutation applies.
    """

    def __init__(self):
        self._cond = Condition(Lock())
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


# ------------------------------------------------------------ thread backend


#: Transport failures that mean "the worker is gone or can't be trusted"
#: — the supervisor's trigger set (application errors inside a healthy
#: worker stay RemoteShardError and are never retried or respawned on).
_WORKER_DOWN = (WorkerCrashed, WorkerTimeout, FrameCorrupt)


class ThreadBackend:
    """Shards served from a live session in the caller's process.

    In-process shards cannot crash independently of the caller, so the
    supervision surface is vestigial here: the counters stay zero and
    ``pinned_gen`` never mismatches (generations only move under the
    server's write lock).
    """

    supervisor = None
    total_retries = 0
    total_respawns = 0

    def __init__(self, session, owned: bool = False):
        self.session = session
        self.owned = owned
        if isinstance(session, ShardedLakeSession):
            self.sharded = True
            self.router = session.router
            self.global_stats = session.global_stats
            self.catalog = session.catalog
            self.name = session.name
            self._shard_sessions = session.shards
        else:
            self.sharded = False
            self.router = ShardRouter(1)
            self.global_stats = True  # one shard: stats are the corpus
            self.catalog = session.profile
            self.name = session.lake.name
            self._shard_sessions = [session]
        self.num_shards = len(self._shard_sessions)
        self.hosts = [ShardHost(s) for s in self._shard_sessions]
        config = (
            session.config if self.sharded else session.cmdl.config
        )
        self.default_strategy = config.discovery_strategy
        self.operator_strategies = config.operator_strategies
        self.union_candidate_k = (
            self._shard_sessions[0].engine.scorer("unionable").candidate_k
        )

    def generations(self) -> dict[int, int]:
        return {i: s.generation for i, s in enumerate(self._shard_sessions)}

    def shard_documents(self, shard: int):
        return self._shard_sessions[shard].profile.documents

    def shard_num_des(self, shard: int) -> int:
        return self._shard_sessions[shard].profile.num_des

    def round_trip(self, shard: int, ops: list, pinned_gen: int | None = None) -> list:
        host = self.hosts[shard]
        with host.lock:
            return [host.handle(op, payload or {}) for op, payload in ops]

    def apply(self, op: str, payload: dict) -> None:
        """Mutations delegate to the wrapped session's own mutators: the
        session handles journaling, global-stats ripple, and routing."""
        session = self.session
        if op == "add_table":
            session.add_table(payload["table"])
        elif op == "update_table":
            session.update_table(payload["table"])
        elif op == "add_documents":
            session.add_documents(payload["documents"])
        elif op == "remove":
            session.remove(payload["name"])
        else:
            raise ValueError(f"unknown mutation op {op!r}")

    def checkpoint(self) -> None:
        if self.session._store is not None:
            self.session._store.checkpoint()

    def close(self) -> None:
        if self.owned:
            self.session.close()


# ----------------------------------------------------------- process backend


class _ShardView:
    """Front-end copy of one worker's planning catalog (lite)."""

    def __init__(self, lite: dict):
        self.update(lite)

    def update(self, lite: dict) -> None:
        self.generation = lite["generation"]
        self.table_columns = lite["table_columns"]
        self.columns = lite["columns"]
        self.documents = set(lite["documents"])
        self.num_des = lite["num_des"]


class _FrontCatalog:
    """Merged planner-facing profile over the per-shard views.

    Duck-types what :class:`~repro.core.srql.planner.Planner` and the
    gather phase read (``table_columns`` / ``columns`` / ``documents`` /
    ``columns_of_table`` / ``num_des``), merged lazily and cached against
    the generation vector — the process-backend analogue of
    :class:`~repro.core.sharding._MergedCatalog`.
    """

    def __init__(self, views: list[_ShardView]):
        self._views = views
        self._key: tuple | None = None
        self._table_columns: dict = {}
        self._columns: dict = {}
        self._documents: dict = {}

    def _sync(self) -> None:
        key = tuple(view.generation for view in self._views)
        if key == self._key:
            return
        table_columns: dict = {}
        columns: dict = {}
        documents: dict = {}
        for view in self._views:
            table_columns.update(view.table_columns)
            columns.update(view.columns)
            documents.update(dict.fromkeys(view.documents))
        self._table_columns = table_columns
        self._columns = columns
        self._documents = documents
        self._key = key

    @property
    def table_columns(self) -> dict:
        self._sync()
        return self._table_columns

    @property
    def columns(self) -> dict:
        self._sync()
        return self._columns

    @property
    def documents(self) -> dict:
        self._sync()
        return self._documents

    def columns_of_table(self, table_name: str) -> list[str]:
        return self.table_columns.get(table_name, [])

    @property
    def num_des(self) -> int:
        return len(self.documents) + len(self.columns)


class ProcessBackend:
    """Shards served by one worker process each, from a saved catalog.

    Failure handling, per layer:

    * every worker call carries ``request_timeout``; any transport
      failure marks the worker broken and surfaces as one of
      ``_WORKER_DOWN`` (:class:`WorkerCrashed` / :class:`WorkerTimeout`
      / :class:`FrameCorrupt`);
    * :meth:`_recover` respawns a broken worker through the
      catalog-reopen path — the child replays its own journal tail back
      to the exact pre-crash state — then reconciles the front-end
      (re-pin the df filter, resync sketches, advance the generation to
      at least the recorded one, re-push corpus stats, drop the shard's
      cache partials via ``on_respawn``). :class:`WorkerSupervisor`
      paces attempts (capped exponential backoff) and opens the circuit
      after ``max_respawns`` consecutive failures;
    * reads (:meth:`round_trip`) are idempotent and retry up to
      ``read_retries`` times on a respawned worker, pinned to the
      batch's snapshot generation — if recovery moved the shard past the
      pinned generation the batch gets :class:`ShardUnavailable` rather
      than a torn read;
    * mutations are never blindly retried (replay would double-apply).
      The write-ahead journal append is the commit point: a crash after
      it leaves a durable record that recovery replays — the mutation
      is delayed, never lost — while a crash before it leaves nothing
      applied and the caller may safely retry.
    """

    def __init__(
        self,
        path: str | Path,
        request_timeout: float | None = 30.0,
        read_retries: int = 1,
        max_respawns: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ):
        path = Path(path)
        if not (path / "catalog.sqlite").exists():
            raise FileNotFoundError(
                f"{path} is not a saved lake catalog (no catalog.sqlite); "
                "create one with session.save(path)"
            )
        self.path = path
        self.catalog_db = ShardStore(path / "catalog.sqlite")
        kind = self.catalog_db.get_meta("kind")
        if kind not in ("monolithic", "sharded"):
            raise ValueError(f"catalog at {path} has unknown kind {kind!r}")
        self.kind = kind
        self.num_shards = int(self.catalog_db.get_meta("num_shards", "1"))
        self.name = self.catalog_db.get_meta("name", "lake")
        self._seq = int(self.catalog_db.get_meta("journal_seq", "0"))
        if kind == "sharded":
            router_state = self.catalog_db.get_state("router")
            self.router = ShardRouter(
                router_state["num_shards"],
                assignments=dict(router_state["assignments"]),
                seed=router_state["seed"],
            )
            self._top = self.catalog_db.get_state("top")
            self.global_stats = self._top["global_stats"]
            self._df_pipeline = (
                None
                if self._top["df_pipeline"] is None
                else DocumentPipeline.restore_state(self._top["df_pipeline"])
            )
        else:
            self.router = ShardRouter(1)
            self._top = None
            self.global_stats = True  # one shard: stats are the corpus
            self._df_pipeline = None
        self.request_timeout = request_timeout
        self.read_retries = read_retries
        self.supervisor = WorkerSupervisor(
            max_respawns=max_respawns,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
        )
        #: Monotonic supervision counters; executors snapshot deltas into
        #: :class:`~repro.core.srql.executor.ExecutionStats`.
        self.total_retries = 0
        self.total_respawns = 0
        #: Called with the shard index after every successful respawn —
        #: the server points it at ``ResultCache.drop_shard``.
        self.on_respawn = None
        #: Shards that crashed under a journaled mutation whose apply is
        #: unconfirmed: recovery must land strictly past the recorded
        #: generation so no cache key spans the crash.
        self._pending_crash: set[int] = set()
        self._recover_locks = [Lock() for _ in range(self.num_shards)]
        self.workers: list[ShardWorker] = []
        self.views: list[_ShardView] = []
        self._doc_texts: dict[str, str] = {}
        try:
            self._boot()
        except BaseException:
            self.close()
            raise
        self.catalog = _FrontCatalog(self.views)
        self.default_strategy = self._lites[0]["discovery_strategy"]
        self.operator_strategies = dict(self._lites[0]["operator_strategies"])
        self.union_candidate_k = self._lites[0]["union_candidate_k"]

    # --------------------------------------------------------------- boot

    def _spawn(self, shard: int) -> ShardWorker:
        return ShardWorker(
            self.path / f"shard-{shard:04d}.sqlite",
            index=shard,
            request_timeout=self.request_timeout,
        )

    def _boot(self) -> None:
        # Spawn every worker first, then collect handshakes: the shard
        # restores (and journal-tail replays) run concurrently across the
        # children. Replay happens *inside* each worker — the recovery
        # path and the boot path are one code path.
        self.workers = [self._spawn(i) for i in range(self.num_shards)]
        readies = [w.wait_ready(timeout=self.request_timeout) for w in self.workers]
        self._lites = [w.call("catalog_lite") for w in self.workers]
        self.views = [_ShardView(lite) for lite in self._lites]
        self.gens = {i: view.generation for i, view in enumerate(self.views)}
        if self._ripples():
            for worker in self.workers:
                for doc_id, text in worker.call("doc_texts"):
                    self._doc_texts[doc_id] = text
            if any(ready.get("replayed") for ready in readies):
                # Replayed document churn may have shifted the corpus df
                # filter: re-pin it from the final corpus and re-sketch
                # whatever drifted (document bags depend only on the
                # final pinned filter, so pin-then-resync converges to
                # the undisturbed writer's state).
                self._pin_all()
                for i, worker in enumerate(self.workers):
                    response = worker.call("resync_documents")
                    self.gens[i] = response["generation"]
                    self.views[i].generation = response["generation"]
        self._push_stats(range(self.num_shards))
        self._seq = max(
            [self._seq] + [ready.get("journal_seq", 0) for ready in readies]
        )

    def _ripples(self) -> bool:
        """Whether document churn ripples across shards (corpus-wide df)."""
        return self.kind == "sharded" and self.global_stats

    def _push_stats(self, fetch_shards) -> None:
        """Re-collect ``fetch_shards``' corpus statistics and re-install
        the merged view on every worker.

        The install fan-out skips broken workers: a dead sibling must
        not fail another shard's mutation or recovery — its own
        recovery re-installs the merged view (:meth:`_recouple`).
        """
        if not (self.global_stats and self.num_shards > 1):
            return
        if not hasattr(self, "_stat_snapshots"):
            self._stat_snapshots = [None] * self.num_shards
        for i in fetch_shards:
            self._stat_snapshots[i] = self.workers[i].call("stats_snapshot")
        for i, worker in enumerate(self.workers):
            remote = {
                family: [
                    self._stat_snapshots[j][family]
                    for j in range(self.num_shards)
                    if j != i
                ]
                for family in STATS_FAMILIES
            }
            if not worker.usable:
                continue
            try:
                worker.call("install_stats", {"remote": remote})
            except _WORKER_DOWN:
                self.supervisor.note_failure(i)

    # ------------------------------------------------------------ queries

    def generations(self) -> dict[int, int]:
        return dict(self.gens)

    def shard_documents(self, shard: int):
        return self.views[shard].documents

    def shard_num_des(self, shard: int) -> int:
        return self.views[shard].num_des

    def round_trip(
        self, shard: int, ops: list, pinned_gen: int | None = None
    ) -> list:
        """One batched read round-trip, supervised.

        A worker failure triggers recovery and up to ``read_retries``
        re-sends — safe because every batched read is idempotent. The
        batch stays pinned to ``pinned_gen``: if recovery moved the
        shard to a different generation (a journaled mutation the crash
        had not yet acknowledged replayed during respawn), re-running
        the reads would tear the snapshot, so the shard is reported
        unavailable *for this batch* instead.
        """
        retries_left = self.read_retries
        while True:
            self._check_pin(shard, pinned_gen)
            worker = self.workers[shard]
            if not worker.usable:
                self._recover(shard)
                continue  # re-check the pin against the recovered state
            try:
                result = worker.call("batch", {"ops": list(ops)})
            except _WORKER_DOWN as exc:
                self.supervisor.note_failure(shard)
                if retries_left <= 0:
                    # Out of budget for this batch; still try to bring
                    # the shard back for the callers after us.
                    try:
                        self._recover(shard)
                    except ShardUnavailable:
                        pass
                    raise ShardUnavailable(
                        f"shard {shard} failed a read past its retry "
                        f"budget: {exc}"
                    ) from exc
                retries_left -= 1
                self.total_retries += 1
                self._recover(shard)
                continue
            self.supervisor.note_ok(shard)
            return result

    def _check_pin(self, shard: int, pinned_gen: int | None) -> None:
        if pinned_gen is not None and self.gens[shard] != pinned_gen:
            raise ShardUnavailable(
                f"shard {shard} moved to generation {self.gens[shard]} "
                f"during recovery; this batch pinned generation "
                f"{pinned_gen}"
            )

    # ----------------------------------------------------------- recovery

    def _recover(self, shard: int) -> ShardWorker:
        """Respawn a broken worker and reconcile it into the serving
        state; raises :class:`ShardUnavailable` when the circuit is open
        or every attempt failed."""
        with self._recover_locks[shard]:
            worker = self.workers[shard]
            if worker.usable:
                return worker  # another caller already recovered it
            last_error: Exception | None = None
            while True:
                if self.supervisor.tripped(shard):
                    raise ShardUnavailable(
                        f"shard {shard} is unavailable: circuit open "
                        f"after {self.supervisor.failures.get(shard, 0)} "
                        f"consecutive failures"
                        + (f" (last: {last_error})" if last_error else "")
                        + f"; server.reset_shard({shard}) re-arms it"
                    ) from last_error
                self.supervisor.backoff(shard)
                self.workers[shard].kill()
                fresh = self._spawn(shard)
                try:
                    fresh.wait_ready(timeout=self.request_timeout)
                    self.workers[shard] = fresh
                    self._recouple(shard, fresh)
                except (RPCError, RemoteShardError) as exc:
                    fresh.kill()
                    self.supervisor.note_failure(shard)
                    last_error = exc
                    continue
                break
            self.total_respawns += 1
            self.supervisor.note_respawn(shard)
            self._pending_crash.discard(shard)
            if self.on_respawn is not None:
                self.on_respawn(shard)
            return fresh

    def _recouple(self, shard: int, fresh: ShardWorker) -> None:
        """Bring a freshly respawned worker (journal already self-replayed
        at boot) back into front-end state."""
        if self._ripples():
            # The persisted df filter predates the crash; re-pin the
            # current one and re-sketch whatever drifted under it.
            fresh.call("pin_filter", self._pin_payload())
            fresh.call("resync_documents")
        lite = fresh.call("catalog_lite")
        recorded = self.gens[shard]
        floor = recorded + 1 if shard in self._pending_crash else recorded
        if lite["generation"] < floor:
            # Sibling-resync bumps (and a mutation the worker died
            # under) are not in this shard's own journal, so the
            # recovered engine can come back behind the front-end's
            # recorded generation. Advance it: a (shard, generation)
            # cache key must never name two different states.
            lite["generation"] = fresh.call("bump_generation", {"to": floor})
        self.views[shard].update(lite)
        self.gens[shard] = lite["generation"]
        self._push_stats([shard])

    # ---------------------------------------------------------- mutations

    def _route(self, op: str, payload: dict) -> int:
        if op in ("add_table", "update_table"):
            return self.router.shard_of(payload["table"].name)
        if op == "remove":
            return self.router.shard_of(payload["name"])
        if op == "add_documents":
            return self.router.shard_of(payload["documents"][0].doc_id)
        return 0

    def _next_seq(self) -> int:
        self._seq += 1
        self.catalog_db.put_meta("journal_seq", str(self._seq))
        self.catalog_db.commit()
        return self._seq

    def _absorb(self, shard: int, response: dict) -> None:
        self.gens[shard] = response["generation"]
        self.views[shard].update(response["catalog"])

    def apply(self, op: str, payload: dict) -> None:
        if op in ("refresh", "rebalance"):
            raise NotImplementedError(
                f"{op}() is not supported on a process-backed server: it "
                "refits or repartitions whole shards; reopen the catalog "
                "in-process (repro.open_lake(path)), run it there, save, "
                "and serve again"
            )
        if op not in ("add_table", "update_table", "add_documents", "remove"):
            raise ValueError(f"unknown mutation op {op!r}")
        owner = self._route(op, payload)
        self._validate(op, payload, owner)
        if not self.workers[owner].usable:
            # Writer-inline recovery: we hold the write lock, so no
            # reader can observe the generation moving under it.
            self._recover(owner)
        seq = self._next_seq()
        try:
            self.workers[owner].call(
                "journal_append", {"seq": seq, "op": op, "payload": payload}
            )
        except _WORKER_DOWN as exc:
            self.supervisor.note_failure(owner)
            self._pending_crash.add(owner)
            changed = self._resume_after_append_crash(op, payload, owner, seq, exc)
        else:
            try:
                changed = self._dispatch(op, payload, owner)
            except ShardUnavailable:
                # A shard died mid-apply and could not be respawned. The
                # journaled record is durable and replays when the shard
                # recovers: the mutation is delayed, never lost.
                raise
            except BaseException:
                # Application-level failure (the worker rejected the op
                # with the shard healthy): the record must not replay.
                try:
                    self.workers[owner].call("journal_delete", {"seq": seq})
                except _WORKER_DOWN:
                    self.supervisor.note_failure(owner)
                    self._pending_crash.add(owner)
                raise
        self._push_stats(changed)

    def _resume_after_append_crash(
        self, op: str, payload: dict, owner: int, seq: int, cause: Exception
    ) -> set[int]:
        """The owner died during the write-ahead append: decide the
        mutation's fate from what recovery finds in its journal.

        Seq present — the append committed before the crash, so the
        respawned worker already replayed the owner's part; finish the
        cross-shard remainder and report success. Seq absent — nothing
        committed, nothing applied anywhere: fail cleanly and tell the
        caller a retry is safe. Never re-send the append itself: replay
        makes blind mutation retries double-applies.
        """
        self._recover(owner)  # ShardUnavailable (fate unknown) if it fails
        entries = self.workers[owner].call("journal_entries")
        if not any(entry[0] == seq for entry in entries):
            raise ShardUnavailable(
                f"shard {owner} crashed before journaling mutation "
                f"{op!r} (seq {seq}); nothing was applied — safe to retry"
            ) from cause
        return self._dispatch(op, payload, owner, replayed={owner})

    def _validate(self, op: str, payload: dict, owner: int) -> None:
        """Front-end copies of the sharded session's pre-checks, raised
        before anything is journaled or shipped."""
        view = self.views[owner]
        if op == "update_table":
            name = payload["table"].name
            if name not in view.table_columns:
                raise KeyError(
                    f"lake {self.name!r} has no table {name!r} to update"
                )
        elif op == "remove":
            name = payload["name"]
            if name not in view.table_columns and name not in view.documents:
                raise KeyError(
                    f"lake {self.name!r} has no table or document {name!r}"
                )

    def _dispatch(
        self, op: str, payload: dict, owner: int, replayed: set | None = None
    ) -> set[int]:
        """Apply one validated, journaled mutation; returns the shards
        whose generation changed (for the stats re-push).

        ``replayed`` collects the shards whose part of the mutation
        landed through crash-recovery journal replay instead of a direct
        call: their op call is skipped (replay already applied it — a
        re-send would double-apply), and the post-mutation resync runs
        on them too, since their replay predates the current df filter.
        A sub-call crash recovers the shard inline (we hold the write
        lock) and moves it into ``replayed``; only an unrecoverable
        shard aborts with :class:`ShardUnavailable` — the journal record
        stays durable for its eventual recovery.
        """
        replayed = set() if replayed is None else replayed

        def mutate(shard: int, sub_op: str, sub_payload: dict) -> None:
            if shard in replayed:
                return
            try:
                response = self.workers[shard].call(sub_op, sub_payload)
            except _WORKER_DOWN:
                self.supervisor.note_failure(shard)
                self._pending_crash.add(shard)
                self._recover(shard)  # boot replay applies the journal slice
                replayed.add(shard)
            else:
                self._absorb(shard, response)

        if op in ("add_table", "update_table"):
            mutate(owner, op, {"table": payload["table"]})
            return {owner}
        if op == "add_documents":
            documents = payload["documents"]
            by_owner: dict[int, list] = {}
            for document in documents:
                by_owner.setdefault(
                    self.router.shard_of(document.doc_id), []
                ).append(document)
            if self._ripples():
                for document in documents:
                    self._doc_texts[document.doc_id] = document.text
                self._pin_all()
            for shard, batch in sorted(by_owner.items()):
                mutate(shard, "add_documents", {"documents": batch})
            changed = set(by_owner)
            if self._ripples():
                changed |= self._resync_siblings(skip=set(by_owner) - replayed)
            return changed
        # remove: a table or a document, resolved against the owner's view
        # (or the maintained text corpus, in case replay already removed
        # it from the view)
        name = payload["name"]
        is_document = name in self.views[owner].documents or name in self._doc_texts
        if is_document and self._ripples():
            self._doc_texts.pop(name, None)
            self._pin_all()
            mutate(owner, "remove", {"name": name})
            return {owner} | self._resync_siblings(skip={owner} - replayed)
        if is_document:
            self._doc_texts.pop(name, None)
        mutate(owner, "remove", {"name": name})
        return {owner}

    def _pin_payload(self) -> dict:
        """Refit the corpus-wide df filter from the maintained text corpus
        (mirrors ``_sync_document_filter``)."""
        texts = list(self._doc_texts.values())
        self._df_pipeline.fit(texts)
        return {
            "common_terms": sorted(self._df_pipeline.common_terms),
            "num_docs": len(texts),
        }

    def _pin_all(self) -> None:
        """Pin the current df filter on every reachable worker. A broken
        worker is skipped: its recovery pins the filter (:meth:`_recouple`)."""
        payload = self._pin_payload()
        for shard, worker in enumerate(self.workers):
            if not worker.usable:
                continue
            try:
                worker.call("pin_filter", payload)
            except _WORKER_DOWN:
                self.supervisor.note_failure(shard)

    def _resync_siblings(self, skip: set[int]) -> set[int]:
        changed = set()
        for i, worker in enumerate(self.workers):
            if i in skip:
                continue
            try:
                response = worker.call("resync_documents")
            except _WORKER_DOWN:
                # Recovery resyncs this shard when it comes back; don't
                # let a dead sibling fail the mutation that completed.
                self.supervisor.note_failure(i)
                continue
            if response["changed"]:
                self.gens[i] = response["generation"]
                self.views[i].generation = response["generation"]
                changed.add(i)
        return changed

    # -------------------------------------------------------- persistence

    def checkpoint(self) -> None:
        """Fold every worker's journal into its shard file and refresh the
        manifest — the served catalog stays reopenable at any time."""
        for shard, worker in enumerate(self.workers):
            try:
                worker.call("checkpoint")
            except _WORKER_DOWN as exc:
                # The staged rewrite rolls back with the crash; the
                # journal tail is intact and recovery replays it.
                self.supervisor.note_failure(shard)
                self._pending_crash.add(shard)
                self._recover(shard)
                raise ShardUnavailable(
                    f"shard {shard} crashed mid-checkpoint; its journal "
                    f"tail is intact and has been replayed by recovery — "
                    f"retry checkpoint()"
                ) from exc
        if self._top is not None:
            top = dict(self._top)
            top["df_pipeline"] = (
                None
                if self._df_pipeline is None
                else self._df_pipeline.persistent_state()
            )
            self.catalog_db.put_state("top", top)
            self._top = top
        self.catalog_db.put_meta("journal_seq", str(self._seq))
        self.catalog_db.commit()

    def close(self) -> None:
        for worker in self.workers:
            worker.close()
        self.workers = []
        self.catalog_db.close()


# ------------------------------------------------------------------ server


class LakeServer:
    """Concurrent serving front-end over thread- or process-hosted shards.

    Construct from a live session (``backend="thread"``) or a saved
    catalog path (either backend); or call ``session.serve()``. Queries
    (:meth:`discover` / :meth:`discover_batch`) may run from many threads
    at once; mutations serialise on the writer path. See the module docs
    for the snapshot and caching contracts.

    Fault tolerance (``backend="process"`` — in-process shards cannot
    crash independently, so the knobs are inert on a thread backend):

    * ``request_timeout`` — per-RPC deadline in seconds (``None`` waits
      forever); a worker that misses it is treated as hung and respawned;
    * ``read_retries`` — how many times a read batch is re-sent to a
      freshly respawned worker before the shard counts as down for that
      batch;
    * ``max_respawns`` / ``backoff_base`` / ``backoff_cap`` — the
      supervisor's circuit breaker and capped exponential backoff
      (seconds) between respawn attempts; :meth:`reset_shard` re-arms an
      open circuit;
    * ``degraded`` — what a down shard does to a query: ``"fail"``
      (default) raises :class:`~repro.serve.rpc.ShardUnavailable`;
      ``"partial"`` returns top-k over the live shards and lists the
      missing ones in ``last_stats.degraded_shards``. Mutations never
      degrade: a mutation whose owner shard is down fails cleanly after
      the write-ahead journal append, so it is delayed, never lost.
    """

    def __init__(
        self,
        source,
        backend: str = "thread",
        cache: bool = True,
        cache_entries: int = 4096,
        degraded: str = "fail",
        request_timeout: float | None = 30.0,
        read_retries: int = 1,
        max_respawns: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
    ):
        if backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process', got {backend!r}"
            )
        if degraded not in ("fail", "partial"):
            raise ValueError(
                f"degraded must be 'fail' or 'partial', got {degraded!r}"
            )
        self.degraded = degraded
        if isinstance(source, (str, Path)):
            if backend == "process":
                self.backend = ProcessBackend(
                    source,
                    request_timeout=request_timeout,
                    read_retries=read_retries,
                    max_respawns=max_respawns,
                    backoff_base=backoff_base,
                    backoff_cap=backoff_cap,
                )
            else:
                from repro.store import load_catalog

                self.backend = ThreadBackend(load_catalog(source), owned=True)
        elif isinstance(source, (LakeSession, ShardedLakeSession)):
            if backend == "process":
                raise ValueError(
                    "backend='process' serves a saved catalog: call "
                    "session.save(path) then LakeServer(path, "
                    "backend='process') — or session.serve("
                    "backend='process') to do both"
                )
            self.backend = ThreadBackend(source, owned=False)
        else:
            raise TypeError(
                f"source must be a session or a catalog path, got "
                f"{type(source).__name__}"
            )
        self.cache = ResultCache(cache_entries) if cache else None
        if self.cache is not None and hasattr(self.backend, "on_respawn"):
            # A respawned worker may reuse a reconciled generation
            # number: drop its partials rather than trust key matching
            # across the crash.
            self.backend.on_respawn = self.cache.drop_shard
        self.planner = Planner(
            self.backend.catalog,
            default_strategy=self.backend.default_strategy,
            operator_strategies=self.backend.operator_strategies,
        )
        self._lock = _RWLock()
        self._closed = False
        workers = min(self.backend.num_shards, os.cpu_count() or 1)
        self._pool = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="lake-serve"
            )
            if workers > 1
            else None
        )
        self.last_stats: ExecutionStats = ExecutionStats()

    # ------------------------------------------------------------- reads

    def discover(self, query) -> DiscoveryResultSet:
        """Run one SRQL query against a pinned generation snapshot."""
        return self.discover_batch([query])[0]

    def discover_batch(self, queries) -> list[DiscoveryResultSet]:
        """Run an SRQL workload under one snapshot, one executor, and at
        most three batched round-trips per shard."""
        self._check_open()
        with self._lock.read():
            generations = self.backend.generations()
            executor = ServingExecutor(self, generations)
            plans = self.planner.plan_batch(
                [DiscoveryEngine._to_ast(q) for q in queries]
            )
            results = executor.execute_batch(plans)
            self.last_stats = executor.last_stats
            return results

    def map_shards(self, fn, shards: list[int]) -> None:
        """Run ``fn(shard)`` for each listed shard, concurrently when the
        server has a pool (the executor's fan-out primitive)."""
        if self._pool is not None and len(shards) > 1:
            list(self._pool.map(fn, shards))
        else:
            for shard in shards:
                fn(shard)

    # ------------------------------------------------------------ writes

    def add_table(self, table) -> None:
        self._apply("add_table", {"table": table})

    def update_table(self, table) -> None:
        self._apply("update_table", {"table": table})

    def add_document(self, document) -> None:
        self.add_documents([document])

    def add_documents(self, documents) -> None:
        self._apply("add_documents", {"documents": list(documents)})

    def remove(self, name: str) -> None:
        self._apply("remove", {"name": name})

    def _apply(self, op: str, payload: dict) -> None:
        self._check_open()
        with self._lock.write():
            self.backend.apply(op, payload)

    def checkpoint(self) -> None:
        """Durably fold outstanding journal entries into the catalog."""
        self._check_open()
        with self._lock.write():
            self.backend.checkpoint()

    # ------------------------------------------------------------- admin

    def reset_shard(self, shard: int) -> None:
        """Re-arm an open circuit: clear the shard's consecutive-failure
        count so the next request attempts recovery again."""
        supervisor = getattr(self.backend, "supervisor", None)
        if supervisor is not None:
            supervisor.reset(shard)

    @property
    def generations(self) -> dict[int, int]:
        return self.backend.generations()

    @property
    def generation(self) -> int:
        return sum(self.backend.generations().values())

    @property
    def num_shards(self) -> int:
        return self.backend.num_shards

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("this LakeServer is closed")

    def close(self) -> None:
        """Shut down workers/pool (idempotent). A thread backend wrapping
        a caller-owned live session leaves that session open."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.backend.close()

    def __enter__(self) -> "LakeServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        kind = type(self.backend).__name__
        return (
            f"LakeServer({self.backend.name!r}, {kind}, "
            f"shards={self.backend.num_shards}, "
            f"cache={'on' if self.cache is not None else 'off'})"
        )
