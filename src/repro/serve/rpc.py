"""Length-prefixed socket RPC with codec slab encoding.

One message is one frame::

    u32 part_count | { u64 length | bytes } * part_count

Part 0 is the pickled residual of :func:`repro.store.codec.split_arrays`
plus the ``(dtype, shape)`` descriptors of every extracted array; parts
1..n are the arrays' raw bytes. Query sketches, solo encodings, and slab
payloads therefore cross the pipe as typed segments — the same encoding
the shard catalogs store on disk — instead of being re-pickled
element-wise.

Requests and responses are plain tuples: ``(op, payload)`` up,
``("ok", result) | ("err", traceback)`` down. One request is in flight
per connection at a time; the parent serialises callers with a lock
(:class:`repro.serve.worker.ShardWorker`).
"""

from __future__ import annotations

import socket
import struct

import numpy as np

from repro.store import codec

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: Sanity bound on a single frame part (1 GiB) — a corrupted length
#: prefix fails loudly instead of attempting a huge allocation.
MAX_PART_BYTES = 1 << 30


def encode_message(obj) -> list[bytes]:
    """Encode one message into its wire parts (residual + array slabs)."""
    arrays: list[np.ndarray] = []
    residual = codec.split_arrays(obj, arrays)
    metas = []
    parts: list[bytes] = [b""]  # placeholder for part 0
    for array in arrays:
        dtype, shape, data = codec.encode_array(array)
        metas.append((dtype, shape))
        parts.append(data)
    parts[0] = codec.dumps((residual, metas))
    return parts


def decode_message(parts: list[bytes]):
    """Inverse of :func:`encode_message`."""
    residual, metas = codec.loads(parts[0])
    if not metas:
        return residual
    arrays = [
        codec.decode_array(dtype, shape, data)
        for (dtype, shape), data in zip(metas, parts[1:])
    ]
    return codec.join_arrays(residual, arrays)


class Connection:
    """One framed, blocking RPC endpoint over a stream socket."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._closed = False

    # ---------------------------------------------------------------- send

    def send(self, obj) -> None:
        parts = encode_message(obj)
        frame = bytearray(_U32.pack(len(parts)))
        for part in parts:
            frame += _U64.pack(len(part))
            frame += part
        self._sock.sendall(frame)

    # ---------------------------------------------------------------- recv

    def _recv_exact(self, n: int) -> bytes:
        buf = bytearray()
        while len(buf) < n:
            chunk = self._sock.recv(n - len(buf))
            if not chunk:
                raise EOFError("connection closed mid-frame")
            buf += chunk
        return bytes(buf)

    def recv(self):
        (count,) = _U32.unpack(self._recv_exact(_U32.size))
        parts = []
        for _ in range(count):
            (length,) = _U64.unpack(self._recv_exact(_U64.size))
            if length > MAX_PART_BYTES:
                raise ValueError(
                    f"frame part of {length} bytes exceeds the "
                    f"{MAX_PART_BYTES}-byte bound (corrupt stream?)"
                )
            parts.append(self._recv_exact(length))
        return decode_message(parts)

    # --------------------------------------------------------------- admin

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()


class RemoteShardError(RuntimeError):
    """An operation raised inside a shard worker; carries its traceback."""


def check_response(response) -> object:
    """Unwrap an ``("ok", result)`` response or raise the shipped error."""
    status, value = response
    if status == "ok":
        return value
    raise RemoteShardError(f"shard worker failed:\n{value}")
