"""Length-prefixed socket RPC with codec slab encoding.

One message is one frame::

    u32 part_count | { u64 length | bytes } * part_count

Part 0 is the pickled residual of :func:`repro.store.codec.split_arrays`
plus the ``(dtype, shape)`` descriptors of every extracted array; parts
1..n are the arrays' raw bytes. Query sketches, solo encodings, and slab
payloads therefore cross the pipe as typed segments — the same encoding
the shard catalogs store on disk — instead of being re-pickled
element-wise.

Requests and responses are plain tuples: ``(op, payload)`` up,
``("ok", result) | ("err", traceback)`` down. One request is in flight
per connection at a time; the parent serialises callers with a lock
(:class:`repro.serve.worker.ShardWorker`).

Transport failures never leak as bare ``EOFError``/``OSError``/
``socket.timeout``: every failure mode maps onto the typed
:class:`RPCError` hierarchy so callers can tell a dead worker
(:class:`WorkerCrashed`) from a hung one (:class:`WorkerTimeout`) from a
corrupted stream (:class:`FrameCorrupt`) and react per class — respawn,
retry, or give the shard up (:class:`ShardUnavailable`).
"""

from __future__ import annotations

import socket
import struct

import numpy as np

from repro.store import codec

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

#: Sanity bound on a single frame part (1 GiB) — a corrupted length
#: prefix fails loudly instead of attempting a huge allocation.
MAX_PART_BYTES = 1 << 30


# --------------------------------------------------------------------------
# Failure taxonomy


class RPCError(RuntimeError):
    """Base class for every transport / supervision failure.

    Application-level failures (the op itself raised inside a healthy
    worker) stay :class:`RemoteShardError`; everything about the *pipe*
    or the *process* is an :class:`RPCError` subclass.
    """


class ConnectionClosed(RPCError):
    """The peer closed the stream (EOF or reset), possibly mid-frame."""


class WorkerCrashed(ConnectionClosed):
    """The shard worker process is gone (dead pid / broken pipe)."""


class WorkerTimeout(RPCError):
    """No response within the deadline; the connection is poisoned.

    A timed-out connection may still have a partial frame in flight, so
    it must not be reused — the supervisor kills and respawns instead.
    """


class FrameCorrupt(RPCError):
    """The stream desynchronised: bad length prefix or undecodable frame."""


class ShardUnavailable(RPCError):
    """A shard stayed down past its retry/respawn budget (circuit open)."""


class RemoteShardError(RuntimeError):
    """An operation raised inside a shard worker; carries its traceback."""


# --------------------------------------------------------------------------
# Framing


def encode_message(obj) -> list[bytes]:
    """Encode one message into its wire parts (residual + array slabs)."""
    arrays: list[np.ndarray] = []
    residual = codec.split_arrays(obj, arrays)
    metas = []
    parts: list[bytes] = [b""]  # placeholder for part 0
    for array in arrays:
        dtype, shape, data = codec.encode_array(array)
        metas.append((dtype, shape))
        parts.append(data)
    parts[0] = codec.dumps((residual, metas))
    return parts


def decode_message(parts: list[bytes]):
    """Inverse of :func:`encode_message`."""
    residual, metas = codec.loads(parts[0])
    if not metas:
        return residual
    arrays = [
        codec.decode_array(dtype, shape, data)
        for (dtype, shape), data in zip(metas, parts[1:])
    ]
    return codec.join_arrays(residual, arrays)


def frame_bytes(obj) -> bytes:
    """The full wire frame for one message (used by send + fault hooks)."""
    parts = encode_message(obj)
    frame = bytearray(_U32.pack(len(parts)))
    for part in parts:
        frame += _U64.pack(len(part))
        frame += part
    return bytes(frame)


class Connection:
    """One framed, blocking RPC endpoint over a stream socket.

    ``send``/``recv`` accept an optional per-call ``timeout`` (seconds).
    A timeout raises :class:`WorkerTimeout`; EOF and socket errors raise
    :class:`ConnectionClosed`; a bad length prefix or a frame that fails
    to decode raises :class:`FrameCorrupt`.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._closed = False

    # ---------------------------------------------------------------- send

    def send(self, obj, timeout: float | None = None) -> None:
        frame = frame_bytes(obj)
        try:
            self._sock.settimeout(timeout)
            self._sock.sendall(frame)
        except socket.timeout as exc:
            raise WorkerTimeout(
                f"send did not complete within {timeout}s"
            ) from exc
        except OSError as exc:
            raise ConnectionClosed(f"connection lost during send: {exc}") from exc

    # ---------------------------------------------------------------- recv

    def _recv_exact(self, n: int) -> bytes:
        buf = bytearray()
        while len(buf) < n:
            chunk = self._sock.recv(n - len(buf))
            if not chunk:
                raise ConnectionClosed("connection closed mid-frame")
            buf += chunk
        return bytes(buf)

    def recv(self, timeout: float | None = None):
        try:
            self._sock.settimeout(timeout)
            (count,) = _U32.unpack(self._recv_exact(_U32.size))
            parts = []
            for _ in range(count):
                (length,) = _U64.unpack(self._recv_exact(_U64.size))
                if length > MAX_PART_BYTES:
                    raise FrameCorrupt(
                        f"frame part of {length} bytes exceeds the "
                        f"{MAX_PART_BYTES}-byte bound (corrupt stream?)"
                    )
                parts.append(self._recv_exact(length))
        except socket.timeout as exc:
            raise WorkerTimeout(
                f"no response within {timeout}s (hung worker?)"
            ) from exc
        except ConnectionClosed:
            raise
        except OSError as exc:
            raise ConnectionClosed(f"connection lost during recv: {exc}") from exc
        try:
            return decode_message(parts)
        except Exception as exc:  # undecodable pickle / slab mismatch
            raise FrameCorrupt(f"frame failed to decode: {exc}") from exc

    # --------------------------------------------------------------- admin

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()


def check_response(response) -> object:
    """Unwrap an ``("ok", result)`` response or raise the shipped error."""
    status, value = response
    if status == "ok":
        return value
    raise RemoteShardError(f"shard worker failed:\n{value}")
