"""Per-shard result cache keyed by ``(plan node tag, generation scope)``.

The serving executor caches the *per-shard partial results* it merges —
a shard's keyword top-k, its candidate-union hits, its PK-FK link list —
not the merged answers. Two consequences:

* invalidation is exact and per-shard for free: every key carries the
  generation scope its value depends on (the owning shard's counter, the
  pair of counters an owner/remote probe spans, or the full generation
  vector for corpus-wide statistics), so a mutation on shard *k* bumps
  shard *k*'s counter and precisely the entries depending on it stop
  matching — entries for untouched shards keep hitting;
* a repeated query after a mutation still reuses the partials of every
  shard the mutation did not touch, paying only the owning shard's
  recompute.

Plan nodes are hashable and structurally deduplicated by the planner
(PR 2), so the tag half of the key is simply the primitive's identifying
fields. Stale entries are never served (their generation scope no longer
matches); they age out of the LRU ring instead of being swept eagerly.
"""

from __future__ import annotations

from collections import OrderedDict
from threading import Lock

_MISSING = object()


class ResultCache:
    """Thread-safe LRU over ``(shard, tag, generation-scope)`` keys."""

    def __init__(self, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries!r}")
        self.max_entries = max_entries
        self._lock = Lock()
        self._entries: OrderedDict = OrderedDict()
        #: Lifetime counters (the per-batch view lives in ExecutionStats).
        self.hits = 0
        self.misses = 0

    def get(self, shard: int, key: tuple):
        """The cached partial for ``key`` on ``shard``, or ``None``."""
        with self._lock:
            value = self._entries.get((shard, key), _MISSING)
            if value is _MISSING:
                self.misses += 1
                return None
            self._entries.move_to_end((shard, key))
            self.hits += 1
            return value

    def put(self, shard: int, key: tuple, value) -> None:
        with self._lock:
            self._entries[(shard, key)] = value
            self._entries.move_to_end((shard, key))
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def keys(self) -> list[tuple]:
        """Snapshot of the live ``(shard, key)`` pairs (tests/diagnostics)."""
        with self._lock:
            return list(self._entries)

    def drop_shard(self, shard: int) -> None:
        """Evict every partial owned by one shard.

        Respawn hygiene: a recovered worker may sit on a reconciled
        (bumped) generation whose number an old entry also carries, so
        the supervisor drops the shard's partials outright rather than
        trusting generation matching across the crash.
        """
        with self._lock:
            for entry in [k for k in self._entries if k[0] == shard]:
                del self._entries[entry]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ResultCache(entries={len(self)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )
