"""Deterministic fault injection for the process serving backend.

Shard workers read a fault plan from the ``REPRO_SERVE_FAULTS``
environment variable at boot (the parent's environment is inherited via
``ShardWorker._child_env``) and fire the planned faults at named points.
Nothing here is probabilistic: a fault either fires at its point or it
does not, so every recovery test replays identically.

Spec grammar — ``;``-separated directives::

    crash:<point>[@marker]        kill the worker (os._exit) at a point
    delay:<op>:<seconds>[@marker] sleep before replying to <op>
    mid_frame:<op>[@marker]       send a truncated reply frame, then exit
    corrupt:<op>[@marker]         send a garbage length prefix, then exit

Crash points:

* ``boot`` — before the catalog is opened (respawn loops hit this).
* ``after_journal_append`` — after the journal row is committed but
  before the append is acknowledged, i.e. inside the crash window
  between ``journal_append`` and the op body on the front-end.
* ``mid_checkpoint`` — after the checkpoint's full-state rewrite ran
  but before the journal tail is cleared/committed (SQLite rolls the
  uncommitted rewrite back, so the journal must survive).

``<op>`` matches the top-level RPC op *or* any sub-op inside a
``batch`` payload, so ``delay:keyword:5`` delays scatter-gather reads.

The optional ``@marker`` names a filesystem path used as a one-shot
latch **across processes**: the first worker to reach the fault creates
the file with ``O_CREAT | O_EXCL`` and fires; every later worker (e.g.
the respawned replacement mid-retry) sees the file and skips the fault.
Without a marker the fault fires every time it is reached — a permanent
``crash:boot`` is how the circuit-breaker tests keep a shard down.

Use :func:`inject` from tests::

    with faults.inject(f"crash:after_journal_append@{tmp_path}/once"):
        server = LakeServer(catalog, backend="process")
        ...
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass

#: Environment variable carrying the fault spec into shard workers.
FAULT_ENV = "REPRO_SERVE_FAULTS"

#: Exit status used by injected crashes, distinct from real tracebacks.
CRASH_EXIT_CODE = 73

CRASH_POINTS = ("boot", "after_journal_append", "mid_checkpoint")
_KINDS = ("crash", "delay", "mid_frame", "corrupt")


@dataclass(frozen=True)
class Fault:
    kind: str  # crash | delay | mid_frame | corrupt
    where: str  # crash point for "crash", op name otherwise
    seconds: float = 0.0  # delay duration
    marker: str | None = None  # one-shot latch path (None = every time)


def parse(spec: str) -> list[Fault]:
    """Parse a ``REPRO_SERVE_FAULTS`` spec into :class:`Fault` entries."""
    faults = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        directive, _, marker = chunk.partition("@")
        fields = directive.split(":")
        kind = fields[0]
        if kind not in _KINDS:
            raise ValueError(f"unknown fault kind {kind!r} in {chunk!r}")
        if kind == "crash":
            if len(fields) != 2 or fields[1] not in CRASH_POINTS:
                raise ValueError(
                    f"crash fault needs a point from {CRASH_POINTS}: {chunk!r}"
                )
            faults.append(Fault("crash", fields[1], marker=marker or None))
        elif kind == "delay":
            if len(fields) != 3:
                raise ValueError(f"delay fault needs op and seconds: {chunk!r}")
            faults.append(
                Fault("delay", fields[1], float(fields[2]), marker or None)
            )
        else:  # mid_frame | corrupt
            if len(fields) != 2:
                raise ValueError(f"{kind} fault needs an op name: {chunk!r}")
            faults.append(Fault(kind, fields[1], marker=marker or None))
    return faults


def _take(marker: str | None) -> bool:
    """Claim a one-shot marker; ``True`` if this process should fire."""
    if marker is None:
        return True
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _ops_in(op: str, payload) -> set[str]:
    """The top-level op plus any sub-ops inside a ``batch`` payload."""
    ops = {op}
    if op == "batch" and isinstance(payload, dict):
        for sub in payload.get("ops", ()):
            if isinstance(sub, (list, tuple)) and sub:
                ops.add(sub[0])
    return ops


class FaultPlan:
    """The faults a single worker process checks at its named points."""

    def __init__(self, faults: list[Fault] | None = None):
        self.faults = faults or []

    @classmethod
    def from_env(cls) -> "FaultPlan":
        spec = os.environ.get(FAULT_ENV, "")
        return cls(parse(spec) if spec else [])

    def __bool__(self) -> bool:
        return bool(self.faults)

    # ------------------------------------------------------------- hooks

    def crash(self, point: str) -> None:
        """Die here if a ``crash:<point>`` fault is armed (never returns)."""
        for fault in self.faults:
            if fault.kind == "crash" and fault.where == point and _take(fault.marker):
                os._exit(CRASH_EXIT_CODE)

    def reply_action(self, op: str, payload) -> Fault | None:
        """The delay/mid_frame/corrupt fault armed for this request, if any.

        ``delay`` faults sleep here and return ``None`` (the reply then
        proceeds normally — the *parent's* deadline is what fires).
        ``mid_frame``/``corrupt`` faults are returned for the serve loop
        to act on, since they need access to the raw frame.
        """
        ops = _ops_in(op, payload)
        for fault in self.faults:
            if fault.kind == "crash" or fault.where not in ops:
                continue
            if not _take(fault.marker):
                continue
            if fault.kind == "delay":
                time.sleep(fault.seconds)
                return None
            return fault
        return None


# --------------------------------------------------------------------------
# Parent-side helpers (tests / benchmarks)


def install(spec: str) -> None:
    """Arm a fault spec for every worker spawned after this call."""
    parse(spec)  # validate eagerly, in the parent
    os.environ[FAULT_ENV] = spec


def clear() -> None:
    """Disarm fault injection for future worker spawns."""
    os.environ.pop(FAULT_ENV, None)


@contextmanager
def inject(spec: str):
    """Context manager: arm ``spec``, restore the previous spec on exit."""
    previous = os.environ.get(FAULT_ENV)
    install(spec)
    try:
        yield
    finally:
        if previous is None:
            clear()
        else:
            os.environ[FAULT_ENV] = previous
