"""Per-shard serving operations: one dispatch table for both backends.

Every entry is a pure function of ``(host, payload)`` where ``host`` wraps
one live :class:`~repro.core.session.LakeSession` (an in-process shard for
the thread backend, a catalog-restored shard inside a worker process for
the process backend). Keeping a single table is what makes the two
backends byte-identical: the thread backend calls :meth:`ShardHost.handle`
directly, the worker process calls it at the far end of the RPC pipe, and
both run exactly the scatter units the in-process
:class:`~repro.core.sharding.ShardedExecutor` runs.

The remote-statistics ops implement global-stats mode over processes: the
front-end gathers each shard's keyword-index statistics
(:func:`_stats_snapshot`), then installs on every worker a real
:class:`~repro.search.engine.CorpusStatsGroup` whose members are the
shard's *live* engine plus frozen snapshot stubs of every sibling — local
mutations re-merge immediately through the group's dirty tracking, and the
front-end re-pushes sibling snapshots after each committed mutation.
"""

from __future__ import annotations

from collections import Counter
from threading import Lock

from repro.core.joinability import JoinDiscovery
from repro.core.session import LakeSession
from repro.core.sharding import STATS_FAMILIES
from repro.search.engine import CorpusStatsGroup

class ColumnLite:
    """The planner-facing slice of a column sketch: enough for validation,
    the "auto" strategy heuristic, and column -> table resolution.

    Deliberately not a (named)tuple: the RPC codec rebuilds tuples while
    extracting array slabs, which would flatten a tuple subclass back to
    ``tuple`` in transit.
    """

    __slots__ = ("table_name", "tags")

    def __init__(self, table_name: str, tags):
        self.table_name = table_name
        self.tags = tags

    def __getstate__(self):
        return (self.table_name, self.tags)

    def __setstate__(self, state):
        self.table_name, self.tags = state

    def __repr__(self) -> str:
        return f"ColumnLite({self.table_name!r}, {self.tags!r})"

#: Scratch entries (union pair caches) kept per shard before the oldest
#: are dropped.
_SCRATCH_LIMIT = 8


class ShardHost:
    """One shard session plus the serving scratch state around it."""

    def __init__(self, session: LakeSession):
        self.session = session
        #: Transient per-query state (union pair caches shared between the
        #: two alignment phases), keyed by (tag, table, generation).
        self.scratch: dict = {}
        #: Serialises ops on this shard: engine caches are not re-entrant.
        self.lock = Lock()

    def handle(self, op: str, payload: dict):
        try:
            fn = OPS[op]
        except KeyError:
            raise ValueError(f"unknown shard op {op!r}") from None
        return fn(self, payload)

    def _scratch_put(self, key, value) -> None:
        self.scratch[key] = value
        while len(self.scratch) > _SCRATCH_LIMIT:
            self.scratch.pop(next(iter(self.scratch)))


# ------------------------------------------------------------ remote stats


class _SnapshotIndex:
    """Frozen corpus statistics of one remote shard's keyword index."""

    def __init__(self, df: dict, ctf: dict, num_docs: int, collection_length: int):
        self._df = Counter(df)
        self._ctf = Counter(ctf)
        self.num_docs = num_docs
        self.collection_length = collection_length

    def document_frequencies(self) -> Counter:
        return self._df

    def collection_frequencies(self) -> Counter:
        return self._ctf


class _SnapshotEngine:
    """Duck-typed group member holding a :class:`_SnapshotIndex`."""

    def __init__(self, index: _SnapshotIndex):
        self.index = index

    def share_stats(self, group) -> None:  # stubs never score anything
        pass


def _stats_snapshot(host: ShardHost, payload: dict) -> dict:
    """Per-family (df, ctf, num_docs, collection_length) of this shard."""
    snapshot = {}
    for family in STATS_FAMILIES:
        index = getattr(host.session.indexes, family).index
        snapshot[family] = (
            dict(index.document_frequencies()),
            dict(index.collection_frequencies()),
            index.num_docs,
            index.collection_length,
        )
    return snapshot


def _install_stats(host: ShardHost, payload: dict) -> None:
    """Wire this shard's keyword engines to groups merging the (frozen)
    sibling snapshots in ``payload["remote"]`` with the live local index."""
    for family in STATS_FAMILIES:
        members = [getattr(host.session.indexes, family)]
        for df, ctf, num_docs, length in payload["remote"].get(family, []):
            members.append(
                _SnapshotEngine(_SnapshotIndex(df, ctf, num_docs, length))
            )
        CorpusStatsGroup(members)
    return None


# -------------------------------------------------------------- state reads


def _generation(host: ShardHost, payload: dict) -> int:
    return host.session.generation


def _catalog_lite(host: ShardHost, payload: dict) -> dict:
    """The front-end's planning view of this shard."""
    session = host.session
    profile = session.profile
    config = session.cmdl.config
    return {
        "generation": session.generation,
        "table_columns": {
            name: list(cols) for name, cols in profile.table_columns.items()
        },
        "columns": {
            cid: ColumnLite(sketch.table_name, sketch.tags)
            for cid, sketch in profile.columns.items()
        },
        "documents": list(profile.documents),
        "num_des": profile.num_des,
        "discovery_strategy": config.discovery_strategy,
        "operator_strategies": dict(config.operator_strategies or {}),
        "union_candidate_k": session.engine.scorer("unionable").candidate_k,
    }


def _doc_texts(host: ShardHost, payload: dict) -> list[tuple[str, str]]:
    return [(d.doc_id, d.text) for d in host.session.lake.documents]


def _get_table(host: ShardHost, payload: dict):
    return host.session.lake.table(payload["name"])


def _document_encoding(host: ShardHost, payload: dict):
    return host.session.profile.documents[payload["doc_id"]].encoding


def _table_sketches(host: ShardHost, payload: dict) -> list:
    profile = host.session.profile
    return [
        profile.columns[cid]
        for cid in profile.columns_of_table(payload["table"])
    ]


# --------------------------------------------------------------- query ops


def _keyword(host: ShardHost, payload: dict) -> list:
    result = getattr(host.session.engine, payload["op"])(
        payload["value"], mode=payload["mode"], k=payload["k"]
    )
    return result.items


def _text_query_sketch(host: ShardHost, payload: dict):
    return host.session.engine.text_query_sketch(payload["value"])


def _text_column_parts(host: ShardHost, payload: dict) -> tuple:
    return host.session.engine.text_column_parts(
        payload["sketch"], payload["k"]
    )


def _encoding_column_hits(host: ShardHost, payload: dict) -> list:
    return host.session.engine.encoding_column_hits(
        payload["encoding"], payload["k"]
    )


def _joinable_columns_for(host: ShardHost, payload: dict) -> dict:
    scorer = host.session.engine.scorer("joinable")
    k = payload.get("k", JoinDiscovery.PER_COLUMN_K)
    return {
        sketch.de_id: scorer.joinable_columns_for(sketch, k=k)
        for sketch in payload["sketches"]
    }


def _union_phase1(host: ShardHost, payload: dict) -> tuple:
    """Candidate scoring; parks the pair cache for this query's phase 2."""
    pair_cache: dict = {}
    hits, caps = host.session.engine.scorer("unionable").candidate_hits_for(
        payload["sketches"], pair_cache=pair_cache
    )
    host._scratch_put(
        ("union", payload["table"], host.session.generation), pair_cache
    )
    return hits, caps


def _union_phase2(host: ShardHost, payload: dict) -> list:
    pair_cache = host.scratch.pop(
        ("union", payload["table"], host.session.generation), None
    )
    if pair_cache is None:
        pair_cache = {}
    return host.session.engine.scorer("unionable").alignment_scores_for(
        payload["sketches"],
        payload["evidence"],
        payload["top_n"],
        row_caps=payload["row_caps"],
        pair_cache=pair_cache,
    )


def _pk_entries(host: ShardHost, payload: dict) -> list:
    return host.session.engine.scorer("pkfk").candidate_pk_entries()


def _pkfk_links_for(host: ShardHost, payload: dict) -> list:
    return host.session.engine.scorer("pkfk").links_for(payload["entries"])


# ------------------------------------------------------------ mutation ops


def _mutated(host: ShardHost) -> dict:
    """Mutation response: new generation + the refreshed planning view."""
    return {
        "generation": host.session.generation,
        "catalog": _catalog_lite(host, {}),
    }


def _add_table(host: ShardHost, payload: dict) -> dict:
    host.session.add_table(payload["table"])
    return _mutated(host)


def _update_table(host: ShardHost, payload: dict) -> dict:
    host.session.update_table(payload["table"])
    return _mutated(host)


def _add_documents(host: ShardHost, payload: dict) -> dict:
    host.session.add_documents(payload["documents"])
    return _mutated(host)


def _remove(host: ShardHost, payload: dict) -> dict:
    host.session.remove(payload["name"])
    return _mutated(host)


def _bump_generation(host: ShardHost, payload: dict) -> int:
    """Advance this shard's generation to at least ``payload["to"]``.

    Crash-recovery reconciliation: sibling-resync bumps and the mutation
    a worker died under are not in the shard's own journal, so a
    respawned engine can come back *behind* the front-end's recorded
    generation. Bumping restores the invariant the result cache rests on
    — a ``(shard, generation)`` pair never names two different states —
    without touching any derived state (the state itself is already
    exact after journal replay).
    """
    engine = host.session.engine
    target = payload["to"]
    if engine.generation < target:
        engine.generation = target
        if engine.candidates is not None:
            engine.candidates.generation = target
    return engine.generation


def _pin_filter(host: ShardHost, payload: dict) -> None:
    """Pin the corpus-wide df filter the front-end just recomputed."""
    host.session.profiler.pipeline.pin_filter(
        set(payload["common_terms"]), payload["num_docs"]
    )
    return None


def _resync_documents(host: ShardHost, payload: dict) -> dict:
    """Sibling-shard half of a global-stats document mutation: re-sketch
    any document whose bag drifted under the newly pinned filter."""
    changed = host.session._resync_documents()
    if changed:
        host.session._commit()
    return {"changed": changed, "generation": host.session.generation}


OPS = {
    "stats_snapshot": _stats_snapshot,
    "install_stats": _install_stats,
    "generation": _generation,
    "catalog_lite": _catalog_lite,
    "doc_texts": _doc_texts,
    "get_table": _get_table,
    "document_encoding": _document_encoding,
    "table_sketches": _table_sketches,
    "keyword": _keyword,
    "text_query_sketch": _text_query_sketch,
    "text_column_parts": _text_column_parts,
    "encoding_column_hits": _encoding_column_hits,
    "joinable_columns_for": _joinable_columns_for,
    "union_phase1": _union_phase1,
    "union_phase2": _union_phase2,
    "pk_entries": _pk_entries,
    "pkfk_links_for": _pkfk_links_for,
    "add_table": _add_table,
    "update_table": _update_table,
    "add_documents": _add_documents,
    "remove": _remove,
    "bump_generation": _bump_generation,
    "pin_filter": _pin_filter,
    "resync_documents": _resync_documents,
}
