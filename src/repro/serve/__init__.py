"""Serving layer: shard workers behind a concurrent discovery front-end.

The sharded session (PR 5) scatter-gathers inside one process, so every
query and every mutation still share one GIL and one address space. This
package splits the two roles the way HTAP designs isolate update
propagation from analytics (Polynesia, arXiv:2103.00798):

* :mod:`repro.serve.rpc` — length-prefixed socket framing that ships
  sketches and per-shard top-k lists with the :mod:`repro.store.codec`
  slab encoding (numpy arrays travel as raw typed segments, not pickle
  bytes);
* :mod:`repro.serve.ops` — the per-shard operation table. One dispatch
  serves both backends: the thread backend calls it on in-process shard
  sessions, the worker process calls it on its restored shard;
* :mod:`repro.serve.worker` — one process per shard, booted from the
  shard's own ``shard-NNNN.sqlite`` (reopen, never refit), plus the
  parent-side handle that spawns, calls, and reaps it;
* :mod:`repro.serve.cache` — the per-shard result cache keyed by
  ``(plan node, generation scope)``;
* :mod:`repro.serve.executor` — batched scatter: one round-trip per shard
  ships a whole operator group, partial results flow through the cache;
* :mod:`repro.serve.server` — :class:`LakeServer`: generation-pinned
  snapshot reads, a single writer path per shard, ``session.serve()``;
* :mod:`repro.serve.faults` — deterministic fault injection for the
  recovery tests and ``benchmarks/bench_faults.py``.

Fault tolerance (process backend): transport failures surface as the
typed :class:`RPCError` hierarchy, a :class:`WorkerSupervisor` respawns
crashed or hung workers through the catalog-reopen path (the worker
replays its own journal tail back to the exact pre-crash state), reads
retry on the respawned worker pinned to their snapshot generation, and a
shard down past its budget either fails the query
(:class:`ShardUnavailable`, ``degraded="fail"``) or drops out of the
top-k with ``ExecutionStats.degraded_shards`` populated
(``degraded="partial"``).
"""

from repro.serve.cache import ResultCache
from repro.serve.rpc import (
    ConnectionClosed,
    FrameCorrupt,
    RemoteShardError,
    RPCError,
    ShardUnavailable,
    WorkerCrashed,
    WorkerTimeout,
)
from repro.serve.server import LakeServer
from repro.serve.worker import WorkerSupervisor

__all__ = [
    "ConnectionClosed",
    "FrameCorrupt",
    "LakeServer",
    "RPCError",
    "RemoteShardError",
    "ResultCache",
    "ShardUnavailable",
    "WorkerCrashed",
    "WorkerSupervisor",
    "WorkerTimeout",
]
