"""Generation-pinned, cache-fronted scatter execution for serving.

:class:`ServingExecutor` is the serving counterpart of
:class:`~repro.core.sharding.ShardedExecutor`: the merge logic is
replicated step for step (the parity contract is *byte-identical* top-k),
but primitive evaluation differs in three ways:

* **pinned snapshot** — the executor is constructed per batch with the
  generation vector captured under the server's read lock; every result it
  produces, and every cache entry it writes, is attributed to exactly that
  vector;
* **batched round-trips** — per pipeline stage, all primitive work bound
  for one shard ships as a single ``batch`` op (one RPC for the process
  backend, one lock acquisition for the thread backend): a whole operator
  group costs each shard at most three round-trips (owner fetches,
  broadcast probes, dependent follow-ups), not one per primitive;
* **the result cache** — per-shard *partials* are cached under
  ``(tag, generation scope)`` keys, so a mutation on one shard leaves
  every other shard's contributions warm (see :mod:`repro.serve.cache`).

Generation scopes per partial: a keyword list depends on its own shard —
plus, under ``global_stats``, on every shard (corpus-wide df/N feed the
scores). An owner-derived probe (cross-modal encodings, join/union
sketches) depends on the owner and the probed shard. Union phase 2 and
PK-FK links fold evidence from all shards, so they scope to the full
vector.
"""

from __future__ import annotations

from collections import namedtuple

from repro.core.discovery import (
    DiscoveryEngine,
    DiscoveryResultSet,
    aggregate_to_tables,
    pkfk_tables_for,
)
from repro.core.joinability import JoinDiscovery
from repro.core.sharding import _merge_topk
from repro.core.srql.executor import OP_ORDER, ExecutionStats, Executor
from repro.serve.rpc import ShardUnavailable
from repro.utils.timing import Timer

#: One unit of per-shard work: ``tag``/``dep`` form the cache key (``tag``
#: of ``None`` disables caching for this request).
_Request = namedtuple("_Request", ["shard", "op", "payload", "tag", "dep"])

_JOINT_UNSUPPORTED = (
    "cross_modal(representation='joint') is not supported on sharded "
    "sessions: each shard trains its own joint model and the per-shard "
    "embedding spaces are not comparable; query with "
    "representation='solo' or use a monolithic session"
)


def _degraded_value(op: str, payload: dict):
    """The neutral contribution of an unavailable shard.

    Under ``degraded="partial"`` a shard that stays down past its retry
    budget contributes exactly what an *empty* shard would: no keyword
    hits, no sketches, no links. Merges then proceed unchanged — the
    result is the correct top-k over the shards that answered.
    """
    if op == "text_column_parts":
        return ([], [])
    if op == "joinable_columns_for":
        return {sketch.de_id: [] for sketch in payload["sketches"]}
    if op == "union_phase1":
        return ({sketch.de_id: [] for sketch in payload["sketches"]}, None)
    if op in ("document_encoding", "text_query_sketch"):
        return None
    # keyword / encoding_column_hits / table_sketches / pk_entries /
    # union_phase2 / pkfk_links_for: list-shaped partials merge as empty.
    return []


class ServingExecutor(Executor):
    """One batch's executor: pinned generations, staged fetches, cache."""

    def __init__(self, server, generations: dict[int, int]):
        self.server = server
        self.backend = server.backend
        self.planner = server.planner
        self.cache = server.cache
        self.gens = dict(generations)
        self.num_shards = server.backend.num_shards
        self.global_stats = server.backend.global_stats
        self.degraded = getattr(server, "degraded", "fail")
        self._retries0 = getattr(self.backend, "total_retries", 0)
        self._respawns0 = getattr(self.backend, "total_respawns", 0)
        self.last_stats: ExecutionStats = ExecutionStats()
        #: Merged PK-FK links of this batch (one sweep feeds every pkfk
        #: query, as in the monolithic and sharded executors).
        self._links: list | None = None

    # ------------------------------------------------------------- public

    def execute_batch(self, plans) -> list[DiscoveryResultSet]:
        stats = ExecutionStats(
            generation=sum(self.gens.values()),
            shard_generations=dict(self.gens),
        )
        memo: dict = {}
        groups: dict[str, dict] = {op: {} for op in OP_ORDER}
        for plan in plans:
            for node in plan.nodes():
                if node.op in groups:
                    groups[node.op].setdefault(node.query, node)
        self._run_groups(groups, stats, memo)
        results = [self._eval(plan.root, memo, stats) for plan in plans]
        stats.retries = getattr(self.backend, "total_retries", 0) - self._retries0
        stats.respawns = (
            getattr(self.backend, "total_respawns", 0) - self._respawns0
        )
        self.last_stats = stats
        return results

    def _run_primitive(self, node, stats: ExecutionStats) -> DiscoveryResultSet:
        """Dynamic (``Then``-bound) queries run as a one-node group."""
        groups: dict[str, dict] = {op: {} for op in OP_ORDER}
        groups[node.op][node.query] = node
        memo: dict = {}
        self._run_groups(groups, stats, memo)
        return memo[node.query]

    # ----------------------------------------------------------- plumbing

    @property
    def catalog(self):
        return self.backend.catalog

    def _table_of(self, column_id: str) -> str:
        return self.catalog.columns[column_id].table_name

    def _local(self, shard: int) -> tuple:
        """Generation scope of a shard-local keyword-scored partial."""
        if self.global_stats:
            return self._full
        return (self.gens[shard],)

    def _fetch(self, requests: list[_Request], stats: ExecutionStats):
        """Resolve requests through the cache; batch misses one round-trip
        per shard, pinned to the batch's generation vector. Returns
        ``(results, hit_mask, degraded)`` where ``degraded`` is the set of
        request indices filled with neutral substitutes because their
        shard stayed down past its retry budget (always empty under
        ``degraded="fail"`` — the :class:`ShardUnavailable` is re-raised
        instead). Substitutes are never cached."""
        results: list = [None] * len(requests)
        hit_mask = [False] * len(requests)
        pending: dict[tuple, list[int]] = {}  # in-flight key -> indices
        misses: dict[int, list[int]] = {}
        cache = self.cache
        for i, request in enumerate(requests):
            key = None if request.tag is None else (request.tag, request.dep)
            if key is not None and cache is not None:
                hit = cache.get(request.shard, key)
                if hit is not None:
                    stats.cache_hits += 1
                    results[i] = hit
                    hit_mask[i] = True
                    continue
                stats.cache_misses += 1
                # Identical keyed requests inside one stage (e.g. join and
                # union probing the same table's sketches) fetch once.
                shard_key = (request.shard, key)
                if shard_key in pending:
                    pending[shard_key].append(i)
                    continue
                pending[shard_key] = [i]
            misses.setdefault(request.shard, []).append(i)

        failed: dict[int, ShardUnavailable] = {}

        def run(shard: int) -> None:
            indices = misses[shard]
            ops = [(requests[i].op, requests[i].payload) for i in indices]
            try:
                with Timer() as timer:
                    values = self.backend.round_trip(
                        shard, ops, pinned_gen=self.gens.get(shard)
                    )
            except ShardUnavailable as exc:
                failed[shard] = exc
                return
            stats.shard_seconds[shard] = (
                stats.shard_seconds.get(shard, 0.0) + timer.elapsed
            )
            stats.shard_round_trips[shard] = (
                stats.shard_round_trips.get(shard, 0) + 1
            )
            for i, value in zip(indices, values):
                results[i] = value
                request = requests[i]
                if request.tag is not None and cache is not None:
                    cache.put(request.shard, (request.tag, request.dep), value)

        self.server.map_shards(run, list(misses))
        degraded: set[int] = set()
        if failed:
            if self.degraded != "partial":
                raise failed[min(failed)]
            for shard in failed:
                if shard not in stats.degraded_shards:
                    stats.degraded_shards.append(shard)
                for i in misses[shard]:
                    results[i] = _degraded_value(
                        requests[i].op, requests[i].payload
                    )
                    degraded.add(i)
            stats.degraded_shards.sort()
        for (_, key), indices in pending.items():
            for i in indices[1:]:
                results[i] = results[indices[0]]
                if indices[0] in degraded:
                    degraded.add(i)
        return results, hit_mask, degraded

    # ------------------------------------------------------------- stages

    def _run_groups(self, groups, stats: ExecutionStats, memo: dict) -> None:
        gens = self.gens
        shards = range(self.num_shards)
        self._full = tuple(gens[i] for i in shards)
        full = self._full
        router = self.backend.router

        # ---- stage 0: owner/probe fetches -----------------------------
        stage0: list[_Request] = []
        xm_ctx: list[dict] = []
        for query in groups["cross_modal"]:
            owner = next(
                (
                    i for i in shards
                    if query.value in self.backend.shard_documents(i)
                ),
                None,
            )
            ctx = {"query": query, "owner": owner}
            if owner is not None:
                if query.representation == "joint":
                    raise RuntimeError(_JOINT_UNSUPPORTED)
                ctx["enc_at"] = len(stage0)
                stage0.append(_Request(
                    owner, "document_encoding", {"doc_id": query.value},
                    ("denc", query.value), (gens[owner],),
                ))
            else:
                probe = next(
                    (i for i in shards if self.backend.shard_num_des(i)), None
                )
                if probe is None:
                    raise ValueError(
                        "cannot build a free-text query sketch over an empty "
                        "profile (no documents and no columns to borrow "
                        "hash-family settings from)"
                    )
                ctx["probe"] = probe
                ctx["tqs_at"] = len(stage0)
                stage0.append(_Request(
                    probe, "text_query_sketch", {"value": query.value},
                    ("tqs", query.value), (gens[probe],),
                ))
            xm_ctx.append(ctx)

        def owner_sketches(table: str) -> tuple[int, int]:
            owner = router.shard_of(table)
            at = len(stage0)
            stage0.append(_Request(
                owner, "table_sketches", {"table": table},
                ("tsk", table), (gens[owner],),
            ))
            return owner, at

        join_ctx = []
        for query in groups["joinable"]:
            owner, at = owner_sketches(query.table)
            join_ctx.append({"query": query, "owner": owner, "tsk_at": at})
        union_ctx = []
        for query in groups["unionable"]:
            owner, at = owner_sketches(query.table)
            union_ctx.append({"query": query, "owner": owner, "tsk_at": at})

        r0, _, d0 = self._fetch(stage0, stats)

        # ---- stage 1: broadcast probes --------------------------------
        stage1: list[_Request] = []

        def broadcast(op, payload, tag, dep_of) -> list[int]:
            at = list(range(len(stage1), len(stage1) + self.num_shards))
            for i in shards:
                stage1.append(_Request(i, op, payload, tag, dep_of(i)))
            return at

        keyword_ctx = []
        for op in ("content_search", "metadata_search"):
            for query in groups[op]:
                self._count(stats, op)
                keyword_ctx.append({
                    "query": query, "op": op,
                    "at": broadcast(
                        "keyword",
                        {"op": op, "value": query.value,
                         "mode": query.mode, "k": query.k},
                        ("kw", op, query.value, query.mode, query.k),
                        self._local,
                    ),
                })

        def xm_degraded(ctx) -> bool:
            """Owner/probe fetch lost to a down shard: the query has no
            anchor to score against, so it degrades to an empty result."""
            at = ctx.get("enc_at", ctx.get("tqs_at"))
            if at not in d0:
                return False
            query = ctx["query"]
            memo[query] = DiscoveryResultSet(
                [],
                operation="crossModal_search",
                inputs={
                    "value": query.value,
                    "representation": query.representation,
                },
            )
            ctx["at"] = None
            return True

        for ctx in xm_ctx:
            query = ctx["query"]
            self._count(stats, "cross_modal")
            column_k = max(query.top_n * 5, 10)
            ctx["column_k"] = column_k
            if xm_degraded(ctx):
                continue
            if ctx["owner"] is not None:
                encoding = r0[ctx["enc_at"]]
                ctx["at"] = broadcast(
                    "encoding_column_hits",
                    {"encoding": encoding, "k": column_k},
                    ("xm_enc", query.value, column_k),
                    lambda i, o=ctx["owner"]: (gens[o], gens[i]),
                )
            else:
                sketch = r0[ctx["tqs_at"]]
                probe = ctx["probe"]
                ctx["at"] = broadcast(
                    "text_column_parts",
                    {"sketch": sketch, "k": column_k},
                    ("xm_txt", query.value, column_k),
                    (lambda i: full) if self.global_stats
                    else (lambda i, p=probe: (gens[p], gens[i])),
                )

        for ctx in join_ctx:
            query = ctx["query"]
            self._count(stats, "joinable")
            ctx["sketches"] = [
                s for s in r0[ctx["tsk_at"]]
                if s.tags is not None and s.tags.join_discovery
            ]
            ctx["at"] = broadcast(
                "joinable_columns_for",
                {"sketches": ctx["sketches"]},
                ("join", query.table),
                lambda i, o=ctx["owner"]: (gens[o], gens[i]),
            )

        for ctx in union_ctx:
            query = ctx["query"]
            self._count(stats, "unionable")
            ctx["sketches"] = r0[ctx["tsk_at"]]
            if not ctx["sketches"]:
                memo[query] = DiscoveryResultSet(
                    [], operation="unionable", inputs={"table": query.table}
                )
                ctx["at"] = None
                continue
            ctx["at"] = broadcast(
                "union_phase1",
                {"sketches": ctx["sketches"], "table": query.table},
                ("uni1", query.table),
                lambda i, o=ctx["owner"]: (gens[o], gens[i]),
            )

        pkfk_queries = list(groups["pkfk"])
        need_links = bool(pkfk_queries) and self._links is None
        if need_links:
            entries_at = broadcast(
                "pk_entries", {}, ("pk_entries",),
                lambda i: (gens[i],),
            )

        r1, _, _ = self._fetch(stage1, stats)

        # keyword / cross-modal / joinable finish on stage-1 partials.
        for ctx in keyword_ctx:
            query = ctx["query"]
            memo[query] = DiscoveryResultSet(
                _merge_topk([r1[a] for a in ctx["at"]], query.k),
                operation=ctx["op"],
                inputs={"value": query.value, "mode": query.mode},
            )
        for ctx in xm_ctx:
            if ctx["at"] is None:
                continue
            query = ctx["query"]
            column_k = ctx["column_k"]
            if ctx["owner"] is not None:
                hits = _merge_topk([r1[a] for a in ctx["at"]], column_k)
            else:
                parts = [r1[a] for a in ctx["at"]]
                containment = _merge_topk([p[0] for p in parts], column_k)
                keyword = _merge_topk([p[1] for p in parts], column_k)
                hits = DiscoveryEngine.merge_text_column_parts(
                    dict(containment), dict(keyword), column_k
                )
            tables = aggregate_to_tables(hits, self._table_of)
            memo[query] = DiscoveryResultSet(
                tables[: query.top_n],
                operation="crossModal_search",
                inputs={
                    "value": query.value,
                    "representation": query.representation,
                },
            )
        per_column_k = JoinDiscovery.PER_COLUMN_K
        for ctx in join_ctx:
            query = ctx["query"]
            hit_dicts = [r1[a] for a in ctx["at"]]
            best: dict[str, float] = {}
            for sketch in ctx["sketches"]:
                merged = _merge_topk(
                    [hits[sketch.de_id] for hits in hit_dicts], per_column_k
                )
                JoinDiscovery.fold_best_pairs(best, merged, self._table_of)
            ranked = sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
            memo[query] = DiscoveryResultSet(
                ranked[: query.top_n],
                operation="joinable",
                inputs={"table": query.table},
            )

        # ---- stage 2: evidence-dependent follow-ups -------------------
        stage2: list[_Request] = []
        for ctx in union_ctx:
            if ctx["at"] is None:
                continue
            query = ctx["query"]
            phase1 = [r1[a] for a in ctx["at"]]
            sketches = ctx["sketches"]
            candidate_k = self.backend.union_candidate_k
            evidence: dict[str, float] = {}
            for sketch in sketches:
                merged = _merge_topk(
                    [hits[sketch.de_id] for hits, _ in phase1], candidate_k
                )
                for col_id, score in merged:
                    if score > 0:
                        table = self._table_of(col_id)
                        evidence[table] = max(evidence.get(table, 0.0), score)
            cap_dicts = [caps for _, caps in phase1]
            row_caps = None
            if all(caps is not None for caps in cap_dicts):
                row_caps = {
                    sketch.de_id: max(caps[sketch.de_id] for caps in cap_dicts)
                    for sketch in sketches
                }
            shard_evidence: list[dict[str, float]] = [{} for _ in shards]
            for table, ev in evidence.items():
                shard_evidence[router.shard_of(table)][table] = ev
            # Shards holding no evidenced candidate contribute [] by
            # construction; skip their round-trips entirely.
            ctx["at2"] = {}
            for i in shards:
                if not shard_evidence[i]:
                    continue
                ctx["at2"][i] = len(stage2)
                stage2.append(_Request(
                    i, "union_phase2",
                    {"sketches": sketches, "evidence": shard_evidence[i],
                     "top_n": query.top_n, "row_caps": row_caps,
                     "table": query.table},
                    ("uni2", query.table, query.top_n), full,
                ))

        if need_links:
            entry_lists = [r1[a] for a in entries_at]
            entries = sorted(
                (entry for entry_list in entry_lists for entry in entry_list),
                key=lambda entry: entry[0].de_id,
            )
            links_at = []
            for i in shards:
                links_at.append(len(stage2))
                stage2.append(_Request(
                    i, "pkfk_links_for", {"entries": entries},
                    ("pkfk_links",), full,
                ))

        r2, r2_hits, _ = self._fetch(stage2, stats)

        for ctx in union_ctx:
            if ctx["at"] is None:
                continue
            query = ctx["query"]
            results = [
                item for a in ctx["at2"].values() for item in r2[a]
            ]
            results.sort(key=lambda kv: (-kv[1], kv[0]))
            memo[query] = DiscoveryResultSet(
                results[: query.top_n],
                operation="unionable",
                inputs={"table": query.table},
            )

        if need_links:
            links = [link for a in links_at for link in r2[a]]
            links.sort(
                key=lambda link: (-link.score, link.pk_column, link.fk_column)
            )
            self._links = links
            if any(not r2_hits[a] for a in links_at):
                stats.pkfk_sweeps += 1
        for query in pkfk_queries:
            self._count(stats, "pkfk")
            stats.pkfk_queries += 1
            ranked = pkfk_tables_for(self._links, query.table, self._table_of)
            memo[query] = DiscoveryResultSet(
                ranked[: query.top_n],
                operation="pkfk",
                inputs={"table": query.table},
            )

    @staticmethod
    def _count(stats: ExecutionStats, op: str) -> None:
        stats.executed += 1
        stats.by_op[op] += 1
