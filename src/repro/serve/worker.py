"""Shard worker process: one ``shard-NNNN.sqlite`` behind an RPC pipe.

The child side (:func:`main`, run as ``python -m repro.serve.worker``)
restores its shard with the catalog-reopen path — PR 7's measurement is
that reopening is ~13x cheaper than refitting, which is what makes
per-shard worker processes a reasonable unit of deployment — wraps it in
the shared :class:`~repro.serve.ops.ShardHost`, and answers framed
requests until ``shutdown`` or EOF (the parent vanishing).

The parent side (:class:`ShardWorker`) spawns the child over a
``socketpair`` inherited by fd — no listening port, no fork of a
thread-carrying parent — serialises callers onto the single in-flight
request the protocol allows, and is reaped on GC via ``weakref.finalize``
as a backstop for servers that were never closed.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import traceback
import weakref
from pathlib import Path
from threading import Lock

from repro.serve.rpc import Connection, check_response


def _serve_loop(conn: Connection, db, host) -> None:
    """Answer requests until shutdown/EOF. Op errors are shipped back as
    ``("err", traceback)`` frames; the worker survives them."""
    from repro.store.catalog import _write_shard_full

    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):
            return  # parent closed the pipe (or died): exit quietly
        payload = payload or {}
        try:
            if op == "shutdown":
                conn.send(("ok", None))
                return
            if op == "batch":
                result = [
                    host.handle(sub_op, sub_payload or {})
                    for sub_op, sub_payload in payload["ops"]
                ]
            elif op == "journal_append":
                db.append_journal(payload["seq"], payload["op"], payload["payload"])
                db.commit()
                result = None
            elif op == "journal_delete":
                db.delete_journal(payload["seq"])
                db.commit()
                result = None
            elif op == "journal_entries":
                result = list(db.journal_entries())
            elif op == "checkpoint":
                _write_shard_full(db, host.session)
                db.clear_journal()
                db.commit()
                result = None
            else:
                result = host.handle(op, payload)
        except BaseException:
            try:
                conn.send(("err", traceback.format_exc()))
            except OSError:
                return
            continue
        try:
            conn.send(("ok", result))
        except OSError:
            return


def main(argv: list[str] | None = None) -> int:
    """Child entry point: ``python -m repro.serve.worker <shard.sqlite> <fd>``."""
    from repro.serve.ops import ShardHost
    from repro.store import ShardStore, restore_shard_session

    argv = sys.argv[1:] if argv is None else argv
    shard_path, fd = Path(argv[0]), int(argv[1])
    sock = socket.socket(fileno=fd)
    conn = Connection(sock)
    try:
        db = ShardStore(shard_path)
        session = restore_shard_session(db)
        host = ShardHost(session)
        conn.send(("ok", {"ready": True, "pid": os.getpid()}))
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc()))
        except OSError:
            pass
        conn.close()
        return 1
    try:
        _serve_loop(conn, db, host)
    finally:
        conn.close()
        db.close()
    return 0


# --------------------------------------------------------------- parent side


def _reap(proc: subprocess.Popen, conn: Connection) -> None:
    """GC / close backstop: drop the pipe, then escalate politely."""
    conn.close()
    if proc.poll() is None:
        try:
            proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            proc.terminate()
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()


def _child_env() -> dict:
    """The child must import :mod:`repro` from the same tree the parent
    runs, whatever the parent's launch mechanism put on ``sys.path``."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else os.pathsep.join([src_root, existing])
    )
    return env


class ShardWorker:
    """Parent-side handle on one shard worker process."""

    def __init__(self, shard_path: str | Path, index: int = 0):
        self.index = index
        self.path = Path(shard_path)
        parent_sock, child_sock = socket.socketpair()
        try:
            # Spawned via -c rather than -m: runpy would re-execute this
            # module on top of the copy the import graph already loaded.
            self.proc = subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    "import sys; from repro.serve.worker import main; "
                    "sys.exit(main(sys.argv[1:]))",
                    str(self.path),
                    str(child_sock.fileno()),
                ],
                pass_fds=(child_sock.fileno(),),
                env=_child_env(),
            )
        finally:
            child_sock.close()
        self.conn = Connection(parent_sock)
        self._lock = Lock()
        self._closed = False
        self._finalizer = weakref.finalize(self, _reap, self.proc, self.conn)

    def wait_ready(self) -> dict:
        """Block until the child finished restoring its shard."""
        return check_response(self.conn.recv())

    def call(self, op: str, payload: dict | None = None):
        """One RPC round-trip (callers are serialised on this worker)."""
        with self._lock:
            if self._closed:
                raise RuntimeError(f"worker {self.index} is closed")
            self.conn.send((op, payload or {}))
            return check_response(self.conn.recv())

    @property
    def alive(self) -> bool:
        return not self._closed and self.proc.poll() is None

    def close(self) -> None:
        """Graceful shutdown: ask, wait, then let the reaper escalate."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self.conn.send(("shutdown", {}))
                check_response(self.conn.recv())
            except (OSError, EOFError):
                pass
        self._finalizer()  # close pipe + wait/terminate, then detach

    def __repr__(self) -> str:
        state = "alive" if self.alive else "closed"
        return f"ShardWorker(index={self.index}, pid={self.proc.pid}, {state})"


if __name__ == "__main__":
    sys.exit(main())
