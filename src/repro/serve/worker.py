"""Shard worker process: one ``shard-NNNN.sqlite`` behind an RPC pipe.

The child side (:func:`main`, run as ``python -m repro.serve.worker``)
restores its shard with the catalog-reopen path — PR 7's measurement is
that reopening is ~13x cheaper than refitting, which is what makes
per-shard worker processes a reasonable unit of deployment *and* what
makes crash recovery cheap: a respawned worker reopens its shard file,
verifies integrity (``PRAGMA quick_check``), replays its own journal
tail (:func:`repro.store.replay_shard_journal`) to the exact pre-crash
state, then answers framed requests until ``shutdown`` or EOF.

Next to the request pipe the child keeps a second *heartbeat* pipe,
answered by a daemon thread regardless of what the serve loop is doing —
so the parent can tell a hung worker (request deadline fires, heartbeat
still answers) from a dead one (both pipes broken).

The parent side (:class:`ShardWorker`) spawns the child over
``socketpair``\\ s inherited by fd, serialises callers onto the single
in-flight request the protocol allows, converts transport failures into
the typed :class:`~repro.serve.rpc.RPCError` hierarchy, and is reaped on
GC via ``weakref.finalize`` as a backstop for servers never closed.
:class:`WorkerSupervisor` holds the respawn policy: capped exponential
backoff between attempts and a circuit breaker that marks the shard
unavailable after N consecutive failures.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
import traceback
import weakref
from pathlib import Path
from threading import Lock

from repro.serve import faults
from repro.serve.rpc import (
    Connection,
    ConnectionClosed,
    FrameCorrupt,
    RPCError,
    RemoteShardError,
    WorkerCrashed,
    WorkerTimeout,
    _U32,
    _U64,
    MAX_PART_BYTES,
    check_response,
    frame_bytes,
)


# ---------------------------------------------------------------- child side


def _replay_context(shard_path: Path, index: int):
    """What shard-local journal replay needs from the rest of the catalog:
    an ``owns_document`` predicate and the sibling shards' journal tails.

    A sharded catalog's ``add_documents`` journal entries can batch
    documents owned by several shards while the record sits in one
    shard's journal, so recovery must (a) filter its own entries by the
    router and (b) read the siblings' journals for entries holding its
    documents. Sibling files are only *read* — WAL mode serves a reader
    alongside the live sibling worker — and entries merge by the global
    seq, so replay order matches the original mutation order.
    """
    catalog_path = shard_path.parent / "catalog.sqlite"
    if not catalog_path.exists():
        return None, None
    from repro.core.sharding import ShardRouter
    from repro.store import ShardStore

    catalog_db = ShardStore(catalog_path)
    try:
        if catalog_db.get_meta("kind") != "sharded":
            return None, None
        num_shards = int(catalog_db.get_meta("num_shards", "1"))
        state = catalog_db.get_state("router")
    finally:
        catalog_db.close()
    router = ShardRouter(
        state["num_shards"],
        assignments=dict(state["assignments"]),
        seed=state["seed"],
    )
    sibling_entries = []
    for i in range(num_shards):
        if i == index:
            continue
        sibling = ShardStore(shard_path.parent / f"shard-{i:04d}.sqlite")
        try:
            sibling_entries.extend(sibling.journal_entries())
        finally:
            sibling.conn.close()  # read-only peek: no commit, just release
    return (lambda doc_id: router.shard_of(doc_id) == index), sibling_entries


def _heartbeat_loop(conn: Connection) -> None:
    """Echo pings forever; runs as a daemon thread so the parent can
    distinguish a hung serve loop (pings answered) from a dead process."""
    while True:
        try:
            op, _ = conn.recv()
        except Exception:
            return
        if op != "ping":
            return
        try:
            conn.send(("ok", {"pid": os.getpid()}))
        except Exception:
            return


def _sabotage_reply(conn: Connection, fault, result) -> None:
    """Fire a mid_frame / corrupt reply fault, then die.

    Either way the stream is beyond repair afterwards, so the worker
    exits with the injected-crash status rather than limp on.
    """
    sock = conn._sock
    try:
        if fault.kind == "mid_frame":
            frame = frame_bytes(("ok", result))
            sock.sendall(frame[: max(5, len(frame) // 2)])
        else:  # corrupt: a length prefix past the sanity bound
            sock.sendall(_U32.pack(2) + _U64.pack(MAX_PART_BYTES + 1))
    except OSError:
        pass
    os._exit(faults.CRASH_EXIT_CODE)


def _serve_loop(conn: Connection, db, host, plan: faults.FaultPlan) -> None:
    """Answer requests until shutdown/EOF. Op errors are shipped back as
    ``("err", traceback)`` frames; the worker survives them."""
    from repro.store.catalog import _write_shard_full

    while True:
        try:
            op, payload = conn.recv()
        except (RPCError, OSError):
            return  # parent closed the pipe (or died): exit quietly
        payload = payload or {}
        try:
            if op == "shutdown":
                conn.send(("ok", None))
                return
            if op == "batch":
                result = [
                    host.handle(sub_op, sub_payload or {})
                    for sub_op, sub_payload in payload["ops"]
                ]
            elif op == "journal_append":
                db.append_journal(payload["seq"], payload["op"], payload["payload"])
                db.commit()
                # The crash window the recovery tests aim at: the entry
                # is durable but the ack never leaves and the op body
                # never runs — replay at respawn must apply it.
                plan.crash("after_journal_append")
                result = None
            elif op == "journal_delete":
                db.delete_journal(payload["seq"])
                db.commit()
                result = None
            elif op == "journal_entries":
                result = list(db.journal_entries())
            elif op == "checkpoint":
                _write_shard_full(db, host.session)
                # Rewrite staged but journal not yet cleared/committed:
                # SQLite rolls the rewrite back, the journal survives.
                plan.crash("mid_checkpoint")
                db.clear_journal()
                db.commit()
                result = None
            else:
                result = host.handle(op, payload)
        except BaseException:
            try:
                conn.send(("err", traceback.format_exc()))
            except (RPCError, OSError):
                return
            continue
        if plan:
            fault = plan.reply_action(op, payload)
            if fault is not None:
                _sabotage_reply(conn, fault, result)
        try:
            conn.send(("ok", result))
        except (RPCError, OSError):
            return


def main(argv: list[str] | None = None) -> int:
    """Child entry point:
    ``python -m repro.serve.worker <shard.sqlite> <req_fd> <hb_fd> <index>``."""
    from repro.serve.ops import ShardHost
    from repro.store import ShardStore, replay_shard_journal, restore_shard_session

    argv = sys.argv[1:] if argv is None else argv
    shard_path, req_fd = Path(argv[0]), int(argv[1])
    hb_fd = int(argv[2]) if len(argv) > 2 else None
    index = int(argv[3]) if len(argv) > 3 else 0
    conn = Connection(socket.socket(fileno=req_fd))
    hb_conn = Connection(socket.socket(fileno=hb_fd)) if hb_fd is not None else None
    plan = faults.FaultPlan.from_env()
    try:
        plan.crash("boot")
        db = ShardStore(shard_path)
        db.integrity_check()
        session = restore_shard_session(db)
        owns_document, sibling_entries = _replay_context(shard_path, index)
        replayed = replay_shard_journal(
            db,
            session,
            owns_document=owns_document,
            sibling_entries=sibling_entries,
        )
        host = ShardHost(session)
        journal_seq = max((seq for seq, _, _ in db.journal_entries()), default=0)
        conn.send(
            (
                "ok",
                {
                    "ready": True,
                    "pid": os.getpid(),
                    "replayed": replayed,
                    "journal_seq": journal_seq,
                },
            )
        )
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc()))
        except (RPCError, OSError):
            pass
        conn.close()
        return 1
    if hb_conn is not None:
        threading.Thread(
            target=_heartbeat_loop, args=(hb_conn,), daemon=True
        ).start()
    try:
        _serve_loop(conn, db, host, plan)
    finally:
        conn.close()
        db.close()
    return 0


# --------------------------------------------------------------- parent side


def _reap(proc: subprocess.Popen, conn: Connection, hb_conn: Connection) -> None:
    """GC / close backstop: drop the pipes, then escalate politely.

    Must never raise: it runs on crashed children (already-dead pids),
    via ``weakref.finalize`` at interpreter teardown, and twice when an
    explicit ``close()`` precedes GC.
    """
    conn.close()
    hb_conn.close()
    try:
        if proc.poll() is None:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
    except OSError:
        pass


def _child_env() -> dict:
    """The child must import :mod:`repro` from the same tree the parent
    runs, whatever the parent's launch mechanism put on ``sys.path``."""
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else os.pathsep.join([src_root, existing])
    )
    return env


class ShardWorker:
    """Parent-side handle on one shard worker process.

    ``request_timeout`` is the default deadline for :meth:`call`; any
    transport failure marks the handle ``broken`` (the connection can no
    longer be trusted — a timed-out request may complete later and leave
    a stale frame in the pipe) and surfaces as :class:`WorkerCrashed`,
    :class:`WorkerTimeout`, or :class:`FrameCorrupt`.
    """

    def __init__(
        self,
        shard_path: str | Path,
        index: int = 0,
        request_timeout: float | None = None,
    ):
        self.index = index
        self.path = Path(shard_path)
        self.request_timeout = request_timeout
        parent_sock, child_sock = socket.socketpair()
        hb_parent, hb_child = socket.socketpair()
        try:
            # Spawned via -c rather than -m: runpy would re-execute this
            # module on top of the copy the import graph already loaded.
            self.proc = subprocess.Popen(
                [
                    sys.executable,
                    "-c",
                    "import sys; from repro.serve.worker import main; "
                    "sys.exit(main(sys.argv[1:]))",
                    str(self.path),
                    str(child_sock.fileno()),
                    str(hb_child.fileno()),
                    str(index),
                ],
                pass_fds=(child_sock.fileno(), hb_child.fileno()),
                env=_child_env(),
            )
        finally:
            child_sock.close()
            hb_child.close()
        self.conn = Connection(parent_sock)
        self.hb_conn = Connection(hb_parent)
        self._lock = Lock()
        self._hb_lock = Lock()
        self._closed = False
        self.broken = False
        self._finalizer = weakref.finalize(
            self, _reap, self.proc, self.conn, self.hb_conn
        )

    # ------------------------------------------------------------ liveness

    def _state(self) -> str:
        code = self.proc.poll()
        return "still running" if code is None else f"exit code {code}"

    def _who(self) -> str:
        return f"shard worker {self.index} (pid {self.proc.pid}, {self._state()})"

    @property
    def alive(self) -> bool:
        return not self._closed and self.proc.poll() is None

    @property
    def usable(self) -> bool:
        """Safe to route requests here: open, unbroken, process alive."""
        return not self._closed and not self.broken and self.proc.poll() is None

    def ping(self, timeout: float = 1.0) -> bool:
        """Heartbeat round-trip on the control pipe.

        ``False`` means no answer within ``timeout`` — with the process
        still alive that is a *hung* worker, not a dead one.
        """
        with self._hb_lock:
            if not self.usable:
                return False
            try:
                self.hb_conn.send(("ping", {}), timeout=timeout)
                check_response(self.hb_conn.recv(timeout=timeout))
                return True
            except (RPCError, RemoteShardError, OSError):
                return False

    # ---------------------------------------------------------------- RPC

    def wait_ready(self, timeout: float | None = None) -> dict:
        """Block until the child finished restoring its shard."""
        try:
            return check_response(self.conn.recv(timeout=timeout))
        except WorkerTimeout:
            self.broken = True
            raise
        except ConnectionClosed as exc:
            self.broken = True
            raise WorkerCrashed(f"{self._who()} died during boot") from exc
        except FrameCorrupt:
            self.broken = True
            raise

    def call(self, op: str, payload: dict | None = None, timeout=...):
        """One RPC round-trip (callers are serialised on this worker)."""
        if timeout is ...:
            timeout = self.request_timeout
        with self._lock:
            if self._closed:
                raise WorkerCrashed(f"worker {self.index} is closed")
            if self.broken:
                raise WorkerCrashed(f"{self._who()} is broken (awaiting respawn)")
            try:
                self.conn.send((op, payload or {}), timeout=timeout)
                return check_response(self.conn.recv(timeout=timeout))
            except WorkerTimeout as exc:
                self.broken = True
                raise WorkerTimeout(f"{self._who()}: {op}: {exc}") from exc
            except ConnectionClosed as exc:
                self.broken = True
                raise WorkerCrashed(f"{self._who()} died during {op!r}") from exc
            except FrameCorrupt as exc:
                self.broken = True
                raise FrameCorrupt(f"{self._who()}: {op}: {exc}") from exc

    # --------------------------------------------------------------- admin

    def kill(self) -> None:
        """Hard stop: close pipes, kill the process, reap it. Idempotent,
        never raises — this is the supervisor's cleanup for a worker
        already presumed broken (no lock: closing the sockets unblocks
        any caller still waiting inside :meth:`call`)."""
        self._closed = True
        self.broken = True
        self.conn.close()
        self.hb_conn.close()
        try:
            if self.proc.poll() is None:
                self.proc.kill()
            self.proc.wait()
        except OSError:
            pass

    def close(self) -> None:
        """Graceful shutdown: ask, wait, then let the reaper escalate.

        Idempotent and tolerant of a child that already exited — the
        shutdown round-trip is skipped for a dead or broken worker, and
        every transport failure on the way out is swallowed.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if not self.broken and self.proc.poll() is None:
                try:
                    self.conn.send(("shutdown", {}), timeout=5.0)
                    check_response(self.conn.recv(timeout=5.0))
                except (RPCError, RemoteShardError, OSError):
                    pass
        self._finalizer()  # close pipes + wait/terminate, then detach

    def __repr__(self) -> str:
        state = "alive" if self.alive else "closed"
        return f"ShardWorker(index={self.index}, pid={self.proc.pid}, {state})"


class WorkerSupervisor:
    """Respawn policy for shard workers: backoff + circuit breaker.

    Tracks *consecutive* failures per shard (a failed respawn attempt or
    a crash detected during service); a success resets the count. Once
    the count reaches ``max_respawns`` the circuit opens — the shard is
    reported :class:`~repro.serve.rpc.ShardUnavailable` without further
    respawn attempts until :meth:`reset` re-arms it. Between attempts,
    :meth:`backoff` sleeps ``backoff_base * 2^(failures-1)`` seconds,
    capped at ``backoff_cap``.
    """

    def __init__(
        self,
        max_respawns: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        sleep=time.sleep,
    ):
        self.max_respawns = max_respawns
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._lock = Lock()
        self.failures: dict[int, int] = {}  # consecutive, resets on success
        self.respawns: dict[int, int] = {}  # lifetime, monotonic

    def tripped(self, shard: int) -> bool:
        with self._lock:
            return self.failures.get(shard, 0) >= self.max_respawns

    def note_failure(self, shard: int) -> None:
        with self._lock:
            self.failures[shard] = self.failures.get(shard, 0) + 1

    def note_ok(self, shard: int) -> None:
        with self._lock:
            self.failures[shard] = 0

    def note_respawn(self, shard: int) -> None:
        with self._lock:
            self.respawns[shard] = self.respawns.get(shard, 0) + 1

    def backoff(self, shard: int) -> None:
        with self._lock:
            failures = self.failures.get(shard, 0)
        if failures:
            delay = self.backoff_base * (2 ** (failures - 1))
            self._sleep(min(delay, self.backoff_cap))

    def reset(self, shard: int) -> None:
        """Re-arm an open circuit (administrative override)."""
        self.note_ok(shard)


if __name__ == "__main__":
    sys.exit(main())
