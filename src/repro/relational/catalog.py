"""The data lake catalog: tables + documents under one namespace."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.table import Column, Table


@dataclass
class Document:
    """An unstructured discoverable element.

    Documents are assumed short (several sentences, paper §2.1); longer
    uploads should be pre-split into paragraph-sized units by the caller via
    :meth:`split_long`.
    """

    doc_id: str
    title: str
    text: str
    source: str = ""
    metadata: dict = field(default_factory=dict)

    def split_long(self, max_sentences: int = 6) -> list["Document"]:
        """Logically break a long document into smaller DE units (paper §2.1)."""
        from repro.text.tokenizer import sentences

        sents = sentences(self.text)
        if len(sents) <= max_sentences:
            return [self]
        parts = []
        for i in range(0, len(sents), max_sentences):
            chunk = " ".join(sents[i : i + max_sentences])
            parts.append(
                Document(
                    doc_id=f"{self.doc_id}#p{i // max_sentences}",
                    title=self.title,
                    text=chunk,
                    source=self.source,
                    metadata=dict(self.metadata),
                )
            )
        return parts


class DataLake:
    """A collection of named tables and documents (one lake = one catalog).

    The lake is the unit over which CMDL profiles, indexes, trains, and
    discovers. Column DEs are addressed by qualified name ``table.column``;
    document DEs by their ``doc_id``.
    """

    def __init__(self, name: str = "lake"):
        self.name = name
        self._tables: dict[str, Table] = {}
        self._documents: dict[str, Document] = {}

    # -------------------------------------------------------------- tables

    def add_table(self, table: Table) -> None:
        if table.name in self._tables:
            raise ValueError(f"duplicate table name {table.name!r}")
        self._tables[table.name] = table

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def remove_table(self, name: str) -> Table:
        """Drop and return a table; raises ``KeyError`` if absent."""
        try:
            return self._tables.pop(name)
        except KeyError:
            raise KeyError(f"lake {self.name!r} has no table {name!r}") from None

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"lake {self.name!r} has no table {name!r}") from None

    @property
    def tables(self) -> list[Table]:
        return list(self._tables.values())

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    # -------------------------------------------------------------- columns

    @property
    def columns(self) -> list[Column]:
        return [c for t in self.tables for c in t.columns]

    def column(self, qualified_name: str) -> Column:
        table_name, _, column_name = qualified_name.partition(".")
        return self.table(table_name).column(column_name)

    # ------------------------------------------------------------ documents

    def add_document(self, document: Document) -> None:
        if document.doc_id in self._documents:
            raise ValueError(f"duplicate document id {document.doc_id!r}")
        self._documents[document.doc_id] = document

    def add_documents(self, documents: list[Document]) -> None:
        for document in documents:
            self.add_document(document)

    def has_document(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def remove_document(self, doc_id: str) -> Document:
        """Drop and return a document; raises ``KeyError`` if absent."""
        try:
            return self._documents.pop(doc_id)
        except KeyError:
            raise KeyError(f"lake {self.name!r} has no document {doc_id!r}") from None

    def document(self, doc_id: str) -> Document:
        try:
            return self._documents[doc_id]
        except KeyError:
            raise KeyError(f"lake {self.name!r} has no document {doc_id!r}") from None

    @property
    def documents(self) -> list[Document]:
        return list(self._documents.values())

    # ------------------------------------------------------------- summary

    @property
    def num_tables(self) -> int:
        return len(self._tables)

    @property
    def num_columns(self) -> int:
        return sum(t.num_columns for t in self.tables)

    @property
    def num_documents(self) -> int:
        return len(self._documents)

    def numeric_fraction(self) -> float:
        """Fraction of columns with numeric type (Table 1's last column)."""
        cols = self.columns
        if not cols:
            return 0.0
        return sum(1 for c in cols if c.dtype.is_numeric) / len(cols)

    def __repr__(self) -> str:
        return (
            f"DataLake({self.name!r}, tables={self.num_tables}, "
            f"columns={self.num_columns}, documents={self.num_documents})"
        )
