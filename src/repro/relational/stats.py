"""Numeric column statistics and numeric-overlap similarity (paper §3, §5.1).

For numeric columns the profiler maintains distinct counts, domain size, and
min/max values; these feed the numeric-based overlap similarity used by both
CMDL and Aurum for columns where set semantics are meaningless.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NumericStats:
    """Summary statistics of a numeric column."""

    count: int
    distinct: int
    minimum: float
    maximum: float
    mean: float
    std: float

    @property
    def domain_size(self) -> float:
        return self.maximum - self.minimum

    def range_overlap(self, other: "NumericStats") -> float:
        """Length of [min,max] intersection over the smaller range.

        An asymmetric-insensitive containment-style measure: 1.0 when one
        range is fully inside the other, 0.0 when disjoint. Point ranges
        (min == max) count as fully overlapping when the point lies inside
        the other range.
        """
        lo = max(self.minimum, other.minimum)
        hi = min(self.maximum, other.maximum)
        if hi < lo:
            return 0.0
        inter = hi - lo
        smaller = min(self.domain_size, other.domain_size)
        if smaller == 0.0:
            return 1.0
        return inter / smaller

    def inclusion(self, other: "NumericStats") -> bool:
        """True if this column's range lies within ``other``'s range."""
        return other.minimum <= self.minimum and self.maximum <= other.maximum


def numeric_stats(values: list[float]) -> NumericStats | None:
    """Compute :class:`NumericStats`, or None for an empty value list."""
    if not values:
        return None
    arr = np.asarray(values, dtype=float)
    return NumericStats(
        count=int(arr.size),
        distinct=int(np.unique(arr).size),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
        std=float(arr.std()),
    )


def numeric_overlap(a: NumericStats | None, b: NumericStats | None) -> float:
    """Numeric similarity combining range overlap and distribution proximity.

    Range overlap dominates (weight 0.7); the remaining 0.3 rewards similar
    means relative to the joint spread, which separates columns that share a
    range but have very different distributions (e.g. ids vs small counts).
    """
    if a is None or b is None:
        return 0.0
    overlap = a.range_overlap(b)
    spread = max(a.std + b.std, 1e-9)
    mean_proximity = float(np.exp(-abs(a.mean - b.mean) / spread))
    return 0.7 * overlap + 0.3 * mean_proximity
