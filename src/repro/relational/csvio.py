"""CSV serialisation for tables (the lake's on-disk tabular format)."""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.relational.table import Column, Table


def read_csv(text: str) -> tuple[list[str], list[list[str]]]:
    """Parse CSV text into (header, rows)."""
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if not rows:
        return [], []
    return rows[0], rows[1:]


def write_csv(header: list[str], rows: list[list[str]]) -> str:
    """Serialise (header, rows) into CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(header)
    writer.writerows(rows)
    return buf.getvalue()


def table_from_csv(name: str, source: str | Path) -> Table:
    """Load a table from CSV text or a CSV file path."""
    if isinstance(source, Path):
        text = source.read_text()
    else:
        path = Path(source)
        # Heuristic: multi-line or comma-bearing strings are CSV payloads,
        # anything else is treated as a filename.
        if "\n" not in source and "," not in source and path.exists():
            text = path.read_text()
        else:
            text = source
    header, rows = read_csv(text)
    if not header:
        return Table(name, [])
    columns = [
        Column(col_name, [row[i] if i < len(row) else "" for row in rows])
        for i, col_name in enumerate(header)
    ]
    return Table(name, columns)


def table_to_csv(table: Table, path: str | Path | None = None) -> str:
    """Serialise a table to CSV text, optionally writing it to ``path``."""
    text = write_csv(table.column_names, [list(r) for r in table.rows()])
    if path is not None:
        Path(path).write_text(text)
    return text
