"""Table and Column: the structured discoverable elements of the lake."""

from __future__ import annotations

from functools import cached_property

from repro.relational.types import ColumnType, infer_column_type, is_missing


class Column:
    """A named column with string-encoded values.

    Columns are the basic unit of discovery over structured data (paper
    §2.1): joinability, unionability, and cross-modal relatedness are all
    computed at column granularity and aggregated to the table level.
    """

    def __init__(self, name: str, values: list[str], table_name: str = ""):
        self.name = name
        self.values = [str(v) for v in values]
        self.table_name = table_name

    # ----------------------------------------------------------- identity

    @property
    def qualified_name(self) -> str:
        """``table.column`` identifier, unique within a lake."""
        return f"{self.table_name}.{self.name}" if self.table_name else self.name

    # ----------------------------------------------------------- contents

    @cached_property
    def non_missing(self) -> list[str]:
        return [v for v in self.values if not is_missing(v)]

    @cached_property
    def distinct_values(self) -> set[str]:
        return set(self.non_missing)

    @cached_property
    def dtype(self) -> ColumnType:
        return infer_column_type(self.values)

    @cached_property
    def numeric_values(self) -> list[float]:
        """Parsed numeric cells (empty unless the column is numeric)."""
        if not self.dtype.is_numeric:
            return []
        out = []
        for v in self.non_missing:
            try:
                out.append(float(v))
            except ValueError:
                continue
        return out

    # --------------------------------------------------------------- stats

    @property
    def cardinality(self) -> int:
        return len(self.distinct_values)

    @property
    def uniqueness(self) -> float:
        """Distinct / non-missing ratio; ~1.0 suggests a key column."""
        if not self.non_missing:
            return 0.0
        return len(self.distinct_values) / len(self.non_missing)

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Column({self.qualified_name!r}, n={len(self.values)}, type={self.dtype.value})"


class Table:
    """A named table: an ordered collection of equally-long columns."""

    def __init__(self, name: str, columns: list[Column]):
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise ValueError(f"columns of table {name!r} have unequal lengths: {sorted(lengths)}")
        self.name = name
        self.columns = list(columns)
        for column in self.columns:
            column.table_name = name
        self._by_name = {c.name: c for c in self.columns}
        if len(self._by_name) != len(self.columns):
            raise ValueError(f"table {name!r} has duplicate column names")

    @classmethod
    def from_dict(cls, name: str, data: dict[str, list]) -> "Table":
        """Build a table from ``{column_name: values}``."""
        return cls(name, [Column(cn, [str(v) for v in vs]) for cn, vs in data.items()])

    # ------------------------------------------------------------- access

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def rows(self) -> list[tuple[str, ...]]:
        """Materialise the table as row tuples."""
        return list(zip(*(c.values for c in self.columns))) if self.columns else []

    # ------------------------------------------------------ derived tables

    def project(self, column_names: list[str], new_name: str) -> "Table":
        """Return a new table keeping only ``column_names`` (in order)."""
        cols = [Column(n, list(self.column(n).values)) for n in column_names]
        return Table(new_name, cols)

    def select_rows(self, row_indexes: list[int], new_name: str) -> "Table":
        """Return a new table keeping only the given row positions."""
        cols = [
            Column(c.name, [c.values[i] for i in row_indexes]) for c in self.columns
        ]
        return Table(new_name, cols)

    def rename_columns(self, mapping: dict[str, str], new_name: str) -> "Table":
        """Return a copy with columns renamed per ``mapping`` (missing = keep)."""
        cols = [
            Column(mapping.get(c.name, c.name), list(c.values)) for c in self.columns
        ]
        return Table(new_name, cols)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {self.num_rows}x{self.num_columns})"
