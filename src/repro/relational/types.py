"""Column type inference (text / numeric / date / categorical detection)."""

from __future__ import annotations

import re
from enum import Enum
from typing import Iterable

_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
_DATE_RES = (
    re.compile(r"^\d{4}-\d{1,2}-\d{1,2}$"),          # 2023-06-01
    re.compile(r"^\d{1,2}/\d{1,2}/\d{2,4}$"),        # 6/1/2023
    re.compile(r"^\d{1,2}-[A-Za-z]{3}-\d{2,4}$"),    # 1-Jun-2023
    re.compile(r"^\d{4}/\d{1,2}/\d{1,2}$"),          # 2023/06/01
)

_MISSING = {"", "na", "n/a", "null", "none", "nan", "-", "?"}


class ColumnType(Enum):
    """Inferred storage type of a column."""

    INTEGER = "integer"
    FLOAT = "float"
    DATE = "date"
    TEXT = "text"
    EMPTY = "empty"

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INTEGER, ColumnType.FLOAT)


def is_missing(value: str) -> bool:
    """True if the cell encodes a missing value."""
    return value.strip().lower() in _MISSING


def infer_value_type(value: str) -> ColumnType:
    """Infer the type of a single cell value."""
    v = value.strip()
    if is_missing(v):
        return ColumnType.EMPTY
    if _INT_RE.match(v):
        return ColumnType.INTEGER
    if _FLOAT_RE.match(v):
        return ColumnType.FLOAT
    for pattern in _DATE_RES:
        if pattern.match(v):
            return ColumnType.DATE
    return ColumnType.TEXT


def infer_column_type(values: Iterable[str], threshold: float = 0.9) -> ColumnType:
    """Infer a column's type by majority vote over non-missing cells.

    A column is declared numeric/date only if at least ``threshold`` of its
    non-missing values parse as such; otherwise it falls back to TEXT (mixed
    columns behave like text for discovery purposes).
    """
    counts = {t: 0 for t in ColumnType}
    total = 0
    for value in values:
        t = infer_value_type(value)
        if t is ColumnType.EMPTY:
            continue
        counts[t] += 1
        total += 1
    if total == 0:
        return ColumnType.EMPTY
    if (counts[ColumnType.INTEGER] + counts[ColumnType.FLOAT]) >= threshold * total:
        if counts[ColumnType.FLOAT] > 0:
            return ColumnType.FLOAT
        return ColumnType.INTEGER
    if counts[ColumnType.DATE] >= threshold * total:
        return ColumnType.DATE
    return ColumnType.TEXT
