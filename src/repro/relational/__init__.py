"""Relational substrate: tables, columns, type inference, stats, CSV IO.

CMDL's discoverable elements on the structured side are *columns* (and tables
as higher-order DEs, paper §2.1). This package provides the in-memory
representation of the structured half of a data lake.
"""

from repro.relational.types import ColumnType, infer_column_type, infer_value_type
from repro.relational.table import Column, Table
from repro.relational.stats import NumericStats, numeric_stats, numeric_overlap
from repro.relational.csvio import read_csv, write_csv, table_from_csv, table_to_csv
from repro.relational.catalog import DataLake, Document

__all__ = [
    "ColumnType",
    "infer_column_type",
    "infer_value_type",
    "Column",
    "Table",
    "NumericStats",
    "numeric_stats",
    "numeric_overlap",
    "read_csv",
    "write_csv",
    "table_from_csv",
    "table_to_csv",
    "DataLake",
    "Document",
]
