"""Triplet margin loss (paper Eq. 1) with analytic gradients.

L(x_t) = max(0, beta + d(x_t, x_cp) - d(x_t, x_cn))

with d the Euclidean distance, x_t the anchor (document), x_cp the positive
column aggregate, and x_cn the hard-negative column aggregate.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def triplet_margin_loss(
    anchor: np.ndarray,
    positive: np.ndarray,
    negative: np.ndarray,
    margin: float = 0.2,
) -> tuple[float, np.ndarray, np.ndarray, np.ndarray]:
    """Batched triplet margin loss.

    All inputs are (batch, dim). Returns (mean loss, grad_anchor,
    grad_positive, grad_negative), each gradient shaped like its input and
    already divided by the batch size.
    """
    if margin < 0:
        raise ValueError(f"margin must be non-negative, got {margin}")
    diff_p = anchor - positive
    diff_n = anchor - negative
    dist_p = np.sqrt((diff_p**2).sum(axis=1) + _EPS)
    dist_n = np.sqrt((diff_n**2).sum(axis=1) + _EPS)
    raw = margin + dist_p - dist_n
    active = raw > 0
    batch = anchor.shape[0]
    loss = float(np.where(active, raw, 0.0).mean()) if batch else 0.0

    # d(dist)/d(x) = diff / dist; zero where the hinge is inactive.
    unit_p = diff_p / dist_p[:, None]
    unit_n = diff_n / dist_n[:, None]
    mask = active[:, None].astype(float) / max(batch, 1)
    grad_anchor = mask * (unit_p - unit_n)
    grad_positive = mask * (-unit_p)
    grad_negative = mask * unit_n
    return loss, grad_anchor, grad_positive, grad_negative


class TripletMarginLoss:
    """Stateful wrapper holding the margin, matching the paper's beta=0.2."""

    def __init__(self, margin: float = 0.2):
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        self.margin = margin

    def __call__(self, anchor, positive, negative):
        return triplet_margin_loss(anchor, positive, negative, margin=self.margin)

    def violation_rate(self, anchor, positive, negative) -> float:
        """Fraction of triplets violating the margin (the paper's "error %")."""
        diff_p = anchor - positive
        diff_n = anchor - negative
        dist_p = np.sqrt((diff_p**2).sum(axis=1) + _EPS)
        dist_n = np.sqrt((diff_n**2).sum(axis=1) + _EPS)
        if anchor.shape[0] == 0:
            return 0.0
        return float((self.margin + dist_p - dist_n > 0).mean())
