"""Layers with forward/backward passes (batch-first convention)."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


class Layer:
    """Base layer protocol: forward caches what backward needs."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Given dL/d(output), return dL/d(input), accumulating param grads."""
        raise NotImplementedError

    @property
    def parameters(self) -> list[np.ndarray]:
        return []

    @property
    def gradients(self) -> list[np.ndarray]:
        return []

    def zero_grad(self) -> None:
        for g in self.gradients:
            g[...] = 0.0


class Dense(Layer):
    """Affine layer y = x W + b with He-uniform initialisation."""

    def __init__(self, in_dim: int, out_dim: int, seed: int | None = 0):
        if in_dim <= 0 or out_dim <= 0:
            raise ValueError(f"invalid dims ({in_dim}, {out_dim})")
        rng = ensure_rng(seed)
        limit = np.sqrt(6.0 / in_dim)
        self.weight = rng.uniform(-limit, limit, size=(in_dim, out_dim))
        self.bias = np.zeros(out_dim)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        self.grad_weight += self._input.T @ grad_output
        self.grad_bias += grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before forward")
        return grad_output * (1.0 - self._output**2)


class Sequential(Layer):
    """Layer composition; forward left-to-right, backward right-to-left."""

    def __init__(self, layers: list[Layer]):
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    @property
    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients]
