"""Minimal neural-network substrate (the PyTorch stand-in).

CMDL's joint representation model is a deep multi-layer network with
200-dimensional inputs and 100-dimensional outputs trained with the triplet
margin loss (paper §4.2). This package provides the necessary machinery
from scratch on numpy: dense layers with exact analytic gradients, ReLU /
tanh activations, SGD and Adam optimisers, and the triplet margin loss with
Euclidean distances.
"""

from repro.nn.layers import Dense, ReLU, Tanh, Sequential
from repro.nn.losses import triplet_margin_loss, TripletMarginLoss
from repro.nn.optim import SGD, Adam
from repro.nn.mlp import MLP

__all__ = [
    "Dense",
    "ReLU",
    "Tanh",
    "Sequential",
    "triplet_margin_loss",
    "TripletMarginLoss",
    "SGD",
    "Adam",
    "MLP",
]
