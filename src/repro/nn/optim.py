"""Gradient-descent optimisers: plain SGD and Adam."""

from __future__ import annotations

import numpy as np


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: list[np.ndarray], gradients: list[np.ndarray],
                 lr: float = 0.01, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if len(parameters) != len(gradients):
            raise ValueError("parameters and gradients must pair up")
        self.parameters = parameters
        self.gradients = gradients
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in parameters]

    def step(self) -> None:
        for p, g, v in zip(self.parameters, self.gradients, self._velocity):
            v *= self.momentum
            v -= self.lr * g
            p += v

    def zero_grad(self) -> None:
        for g in self.gradients:
            g[...] = 0.0


class Adam:
    """Adam optimiser (Kingma & Ba 2015)."""

    def __init__(self, parameters: list[np.ndarray], gradients: list[np.ndarray],
                 lr: float = 1e-3, beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if len(parameters) != len(gradients):
            raise ValueError("parameters and gradients must pair up")
        self.parameters = parameters
        self.gradients = gradients
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in parameters]
        self._v = [np.zeros_like(p) for p in parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bc1 = 1.0 - self.beta1**self._t
        bc2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(self.parameters, self.gradients, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g**2
            p -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)

    def zero_grad(self) -> None:
        for g in self.gradients:
            g[...] = 0.0
