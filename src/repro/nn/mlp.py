"""Multi-layer perceptron assembled from the layer primitives."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Dense, ReLU, Sequential, Tanh


class MLP:
    """Feed-forward network: Dense(+activation) stack with shared backprop.

    ``hidden`` lists the hidden-layer widths; the paper's joint model maps
    200 -> ... -> 100 with a deep multi-layer topology, e.g.
    ``MLP(200, [160, 128], 100)``.
    """

    ACTIVATIONS = {"relu": ReLU, "tanh": Tanh}

    def __init__(
        self,
        in_dim: int,
        hidden: list[int],
        out_dim: int,
        activation: str = "relu",
        seed: int = 0,
    ):
        if activation not in self.ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; expected {list(self.ACTIVATIONS)}"
            )
        act = self.ACTIVATIONS[activation]
        dims = [in_dim, *hidden, out_dim]
        layers = []
        for i, (a, b) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Dense(a, b, seed=seed + i))
            if i < len(dims) - 2:
                layers.append(act())
        self.network = Sequential(layers)
        self.in_dim = in_dim
        self.out_dim = out_dim

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.in_dim:
            raise ValueError(f"input dim {x.shape[1]} != model in_dim {self.in_dim}")
        return self.network.forward(x)

    __call__ = forward

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.network.backward(grad_output)

    @property
    def parameters(self) -> list[np.ndarray]:
        return self.network.parameters

    @property
    def gradients(self) -> list[np.ndarray]:
        return self.network.gradients

    def zero_grad(self) -> None:
        self.network.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters)
