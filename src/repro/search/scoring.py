"""Ranking functions: Okapi BM25 and LM with Dirichlet smoothing.

BM25 (Robertson & Zaragoza 2009) is Elasticsearch's default similarity and
the paper's primary keyword-search baseline; the LM-Dirichlet variant is the
second elastic setting evaluated in Figure 6.
"""

from __future__ import annotations

import math
from collections import Counter

from repro.search.inverted_index import InvertedIndex


class BM25Scorer:
    """Okapi BM25 with the Lucene/Elasticsearch idf formulation."""

    def __init__(self, index: InvertedIndex, k1: float = 1.2, b: float = 0.75):
        if k1 < 0 or not 0.0 <= b <= 1.0:
            raise ValueError(f"invalid BM25 parameters k1={k1}, b={b}")
        self.index = index
        self.k1 = k1
        self.b = b

    def idf(self, term: str) -> float:
        n = self.index.document_frequency(term)
        big_n = self.index.num_docs
        # Lucene's non-negative idf: ln(1 + (N - n + 0.5) / (n + 0.5)).
        return math.log(1.0 + (big_n - n + 0.5) / (n + 0.5))

    def scores(self, query_terms: list[str] | Counter) -> dict[str, float]:
        """Accumulate BM25 scores for all documents matching any query term."""
        qtf = query_terms if isinstance(query_terms, Counter) else Counter(query_terms)
        avgdl = self.index.average_doc_length or 1.0
        out: dict[str, float] = {}
        for term, q_count in qtf.items():
            idf = self.idf(term)
            if idf <= 0.0:
                continue
            for posting in self.index.postings(term):
                dl = self.index.doc_length(posting.doc_key)
                tf = posting.term_frequency
                denom = tf + self.k1 * (1.0 - self.b + self.b * dl / avgdl)
                score = idf * tf * (self.k1 + 1.0) / denom
                out[posting.doc_key] = out.get(posting.doc_key, 0.0) + q_count * score
        return out


class LMDirichletScorer:
    """Query-likelihood language model with Dirichlet-prior smoothing.

    score(q, d) = sum_t qtf(t) * log( (tf(t,d) + mu * p(t|C)) / (|d| + mu) )
                  restricted to matched documents and normalised to be
                  comparable across documents (we use the standard Lucene
                  formulation which subtracts the collection-only score,
                  keeping scores >= 0 for matching terms).
    """

    def __init__(self, index: InvertedIndex, mu: float = 2000.0):
        if mu <= 0:
            raise ValueError(f"mu must be positive, got {mu}")
        self.index = index
        self.mu = mu

    def _collection_prob(self, term: str) -> float:
        cl = self.index.collection_length or 1
        return self.index.collection_frequency(term) / cl

    def scores(self, query_terms: list[str] | Counter) -> dict[str, float]:
        qtf = query_terms if isinstance(query_terms, Counter) else Counter(query_terms)
        out: dict[str, float] = {}
        for term, q_count in qtf.items():
            p_c = self._collection_prob(term)
            if p_c <= 0.0:
                continue
            for posting in self.index.postings(term):
                dl = self.index.doc_length(posting.doc_key)
                tf = posting.term_frequency
                # Lucene LMDirichlet: log(1 + tf / (mu * p_c)) + doc norm.
                score = math.log(1.0 + tf / (self.mu * p_c)) + math.log(
                    self.mu / (dl + self.mu)
                )
                score = max(0.0, score)
                out[posting.doc_key] = out.get(posting.doc_key, 0.0) + q_count * score
        return out
