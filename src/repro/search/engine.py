"""SearchEngine: top-k keyword retrieval facade over the inverted index."""

from __future__ import annotations

from collections import Counter

from repro.search.inverted_index import InvertedIndex
from repro.search.scoring import BM25Scorer, LMDirichletScorer


class SearchEngine:
    """A named keyword index with pluggable ranking (bm25 | lm_dirichlet).

    This is the in-process stand-in for one Elasticsearch index: CMDL keeps
    separate engines for document content, document metadata, column content,
    and column metadata (paper §3).
    """

    RANKERS = ("bm25", "lm_dirichlet")

    def __init__(self, ranker: str = "bm25", k1: float = 1.2, b: float = 0.75,
                 mu: float = 2000.0):
        if ranker not in self.RANKERS:
            raise ValueError(f"unknown ranker {ranker!r}; expected one of {self.RANKERS}")
        self.ranker = ranker
        self.index = InvertedIndex()
        self._bm25_params = (k1, b)
        self._mu = mu
        self._scorer = None

    # -------------------------------------------------------------- build

    def add(self, key: str, terms: list[str] | Counter) -> None:
        self.index.add(key, terms)
        self._scorer = None  # statistics changed; rebuild lazily

    def build_bulk(self, bags) -> None:
        """Index many ``(key, terms)`` pairs in one pass (state identical
        to per-item :meth:`add` calls in the same order)."""
        self.index.build_bulk(bags)
        self._scorer = None

    def remove(self, key: str) -> None:
        self.index.remove(key)
        self._scorer = None

    def __len__(self) -> int:
        return self.index.num_docs

    def __contains__(self, key: str) -> bool:
        return key in self.index

    # -------------------------------------------------------------- query

    def _get_scorer(self):
        if self._scorer is None:
            if self.ranker == "bm25":
                k1, b = self._bm25_params
                self._scorer = BM25Scorer(self.index, k1=k1, b=b)
            else:
                self._scorer = LMDirichletScorer(self.index, mu=self._mu)
        return self._scorer

    def search(
        self,
        query_terms: list[str] | Counter,
        k: int = 10,
        exclude: set[str] | None = None,
    ) -> list[tuple[str, float]]:
        """Return the top-k (key, score) pairs for the query term bag."""
        exclude = exclude or set()
        scored = self._get_scorer().scores(query_terms)
        ranked = sorted(
            ((key, s) for key, s in scored.items() if key not in exclude),
            key=lambda kv: (-kv[1], kv[0]),
        )
        return ranked[:k]
