"""SearchEngine: top-k keyword retrieval facade over the inverted index."""

from __future__ import annotations

from collections import Counter

from repro.search.inverted_index import InvertedIndex
from repro.search.scoring import BM25Scorer, LMDirichletScorer


class CorpusStatsGroup:
    """Merged corpus statistics across several same-family keyword engines.

    The sharded lake partitions one logical index (e.g. "document content")
    into per-shard :class:`SearchEngine` instances. BM25 / LM-Dirichlet
    scores depend on corpus-wide statistics — document frequencies, corpus
    size, average document length — so per-shard scores computed from
    shard-local statistics are not comparable across shards (nor equal to a
    monolithic index's scores). A group merges those statistics: every
    member engine keeps its own postings but scores against the *summed*
    df / N / collection stats of the whole group, which makes per-shard
    scores byte-identical to a monolithic index over the union of members
    (each document's score depends only on its own tf/length plus the
    global statistics).

    Members call :meth:`mark_dirty` whenever their index changes; the
    merged tables are recomputed lazily on the next stats read, so a
    mutation touches only the owning shard's structures.
    """

    def __init__(self, engines: list["SearchEngine"]):
        self._engines = list(engines)
        self._dirty = True
        self._df: Counter = Counter()
        self._collection_tf: Counter = Counter()
        self._num_docs = 0
        self._collection_length = 0
        for engine in self._engines:
            engine.share_stats(self)

    def mark_dirty(self) -> None:
        self._dirty = True

    def _refresh(self) -> None:
        if not self._dirty:
            return
        df: Counter = Counter()
        ctf: Counter = Counter()
        num_docs = 0
        collection_length = 0
        for engine in self._engines:
            index = engine.index
            df.update(index.document_frequencies())
            ctf.update(index.collection_frequencies())
            num_docs += index.num_docs
            collection_length += index.collection_length
        self._df = df
        self._collection_tf = ctf
        self._num_docs = num_docs
        self._collection_length = collection_length
        self._dirty = False

    # ------------------------------------------------------- merged stats

    @property
    def num_docs(self) -> int:
        self._refresh()
        return self._num_docs

    @property
    def collection_length(self) -> int:
        self._refresh()
        return self._collection_length

    @property
    def average_doc_length(self) -> float:
        self._refresh()
        return self._collection_length / self._num_docs if self._num_docs else 0.0

    def document_frequency(self, term: str) -> int:
        self._refresh()
        return self._df.get(term, 0)

    def collection_frequency(self, term: str) -> int:
        self._refresh()
        return self._collection_tf.get(term, 0)


class _SharedStatsIndex:
    """Duck-typed :class:`InvertedIndex` view: local postings, group stats.

    Everything per-document (postings, lengths, membership) reads from the
    wrapped local index; every corpus statistic the rankers consume reads
    from the :class:`CorpusStatsGroup`, so a scorer built over this view
    ranks local documents exactly as a monolithic index over the whole
    group would.
    """

    def __init__(self, index: InvertedIndex, group: CorpusStatsGroup):
        self._index = index
        self._group = group

    # per-document, local
    def postings(self, term: str):
        return self._index.postings(term)

    def doc_length(self, key: str) -> int:
        return self._index.doc_length(key)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def keys(self) -> list[str]:
        return self._index.keys()

    # corpus-wide, merged
    @property
    def num_docs(self) -> int:
        return self._group.num_docs

    @property
    def collection_length(self) -> int:
        return self._group.collection_length

    @property
    def average_doc_length(self) -> float:
        return self._group.average_doc_length

    def document_frequency(self, term: str) -> int:
        return self._group.document_frequency(term)

    def collection_frequency(self, term: str) -> int:
        return self._group.collection_frequency(term)


class SearchEngine:
    """A named keyword index with pluggable ranking (bm25 | lm_dirichlet).

    This is the in-process stand-in for one Elasticsearch index: CMDL keeps
    separate engines for document content, document metadata, column content,
    and column metadata (paper §3).
    """

    RANKERS = ("bm25", "lm_dirichlet")

    def __init__(self, ranker: str = "bm25", k1: float = 1.2, b: float = 0.75,
                 mu: float = 2000.0):
        if ranker not in self.RANKERS:
            raise ValueError(f"unknown ranker {ranker!r}; expected one of {self.RANKERS}")
        self.ranker = ranker
        self.index = InvertedIndex()
        self._bm25_params = (k1, b)
        self._mu = mu
        self._scorer = None
        self._stats_group: CorpusStatsGroup | None = None

    # -------------------------------------------------------------- build

    def add(self, key: str, terms: list[str] | Counter) -> None:
        self.index.add(key, terms)
        self._invalidate()  # statistics changed; rebuild lazily

    def build_bulk(self, bags) -> None:
        """Index many ``(key, terms)`` pairs in one pass (state identical
        to per-item :meth:`add` calls in the same order)."""
        self.index.build_bulk(bags)
        self._invalidate()

    def remove(self, key: str) -> None:
        self.index.remove(key)
        self._invalidate()

    def share_stats(self, group: CorpusStatsGroup | None) -> None:
        """Score against a :class:`CorpusStatsGroup`'s merged statistics.

        Postings stay local; df / N / collection stats come from the group,
        so scores are comparable (and merge-exact) across the group's
        members. ``None`` restores shard-local statistics.
        """
        self._stats_group = group
        self._scorer = None

    def _invalidate(self) -> None:
        self._scorer = None
        if self._stats_group is not None:
            self._stats_group.mark_dirty()

    def __len__(self) -> int:
        return self.index.num_docs

    def __contains__(self, key: str) -> bool:
        return key in self.index

    # -------------------------------------------------------- persistence

    def __getstate__(self) -> dict:
        # The scorer is a derived cache; the stats group is a cross-engine
        # wiring the owning session re-establishes after restore.
        state = dict(self.__dict__)
        state["_scorer"] = None
        state["_stats_group"] = None
        return state

    def persistent_state(self) -> dict:
        k1, b = self._bm25_params
        return {
            "ranker": self.ranker,
            "k1": k1,
            "b": b,
            "mu": self._mu,
            "index": self.index.persistent_state(),
        }

    @classmethod
    def restore_state(cls, state: dict) -> "SearchEngine":
        engine = cls(
            ranker=state["ranker"], k1=state["k1"], b=state["b"], mu=state["mu"]
        )
        engine.index = InvertedIndex.restore_state(state["index"])
        return engine

    # -------------------------------------------------------------- query

    def _get_scorer(self):
        if self._scorer is None:
            index = (
                self.index if self._stats_group is None
                else _SharedStatsIndex(self.index, self._stats_group)
            )
            if self.ranker == "bm25":
                k1, b = self._bm25_params
                self._scorer = BM25Scorer(index, k1=k1, b=b)
            else:
                self._scorer = LMDirichletScorer(index, mu=self._mu)
        return self._scorer

    def search(
        self,
        query_terms: list[str] | Counter,
        k: int = 10,
        exclude: set[str] | None = None,
    ) -> list[tuple[str, float]]:
        """Return the top-k (key, score) pairs for the query term bag."""
        exclude = exclude or set()
        scored = self._get_scorer().scores(query_terms)
        ranked = sorted(
            ((key, s) for key, s in scored.items() if key not in exclude),
            key=lambda kv: (-kv[1], kv[0]),
        )
        return ranked[:k]
