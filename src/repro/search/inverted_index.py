"""Term -> postings inverted index with corpus statistics."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass


@dataclass(frozen=True)
class Posting:
    """One (document, term) occurrence record."""

    doc_key: str
    term_frequency: int


class InvertedIndex:
    """Inverted index over pre-tokenised term bags.

    Documents are added as ``(key, terms)`` where ``terms`` is any iterable
    of strings (typically the output of the text pipeline or a column's
    token bag). The index maintains the statistics both BM25 and
    LM-Dirichlet need: document frequencies, document lengths, collection
    term frequencies.

    Removal is tombstone-based: :meth:`remove` updates every corpus
    statistic exactly (so rankings match a cold-built index over the live
    documents) but leaves dead entries in the postings lists, which
    :meth:`postings` filters lazily; the lists are compacted once tombstones
    exceed :attr:`COMPACT_FRACTION` of the live document count.
    """

    #: Tombstone fraction (dead / live) that triggers postings compaction.
    COMPACT_FRACTION = 0.25

    def __init__(self) -> None:
        self._postings: dict[str, list[Posting]] = defaultdict(list)
        self._doc_lengths: dict[str, int] = {}
        self._collection_tf: Counter = Counter()
        self._doc_terms: dict[str, Counter] = {}
        self._df: Counter = Counter()
        #: Tombstoned key -> the terms its dead postings live under.
        self._deleted: dict[str, frozenset[str]] = {}

    # -------------------------------------------------------------- build

    def add(self, key: str, terms: list[str] | Counter) -> None:
        if key in self._doc_lengths:
            raise ValueError(f"duplicate index key {key!r}")
        dead_terms = self._deleted.pop(key, None)
        if dead_terms is not None:
            # Re-adding a tombstoned key: purge just its dead postings so
            # the new entry is the only one under this key.
            for term in dead_terms:
                self._purge_term(term, key)
        tf = terms if isinstance(terms, Counter) else Counter(terms)
        self._doc_lengths[key] = sum(tf.values())
        self._doc_terms[key] = tf.copy()
        for term, count in tf.items():
            self._postings[term].append(Posting(key, count))
            self._collection_tf[term] += count
            self._df[term] += 1

    def build_bulk(self, bags) -> None:
        """Add many ``(key, terms)`` documents in one fused pass.

        State (postings order, corpus statistics) is identical to calling
        :meth:`add` per bag in the same order; on a fresh index the loop is
        fused with no per-document tombstone bookkeeping. Used by the bulk
        index construction of :class:`~repro.core.indexes.IndexCatalog`.
        """
        if self._doc_lengths or self._deleted:
            # Non-empty or churned index: per-item add handles re-added
            # tombstoned keys correctly.
            for key, terms in bags:
                self.add(key, terms)
            return
        postings = self._postings
        doc_lengths = self._doc_lengths
        doc_terms = self._doc_terms
        collection_tf = self._collection_tf
        df = self._df
        for key, terms in bags:
            if key in doc_lengths:
                raise ValueError(f"duplicate index key {key!r}")
            tf = terms if isinstance(terms, Counter) else Counter(terms)
            doc_lengths[key] = sum(tf.values())
            # .copy() is a C-level dict copy — same state as Counter(tf)
            # without re-counting every term through Python.
            doc_terms[key] = tf.copy()
            for term, count in tf.items():
                postings[term].append(Posting(key, count))
                collection_tf[term] += count
                df[term] += 1

    def remove(self, key: str) -> None:
        """Tombstone one document, keeping every corpus statistic exact."""
        if key not in self._doc_lengths:
            raise KeyError(f"no index entry for key {key!r}")
        tf = self._doc_terms.pop(key)
        del self._doc_lengths[key]
        for term, count in tf.items():
            self._collection_tf[term] -= count
            if self._collection_tf[term] <= 0:
                del self._collection_tf[term]
            self._df[term] -= 1
            if self._df[term] <= 0:
                del self._df[term]
        self._deleted[key] = frozenset(tf)
        if len(self._deleted) > self.COMPACT_FRACTION * max(self.num_docs, 1):
            self._compact()

    def _purge_term(self, term: str, key: str) -> None:
        live = [p for p in self._postings.get(term, ()) if p.doc_key != key]
        if live:
            self._postings[term] = live
        elif term in self._postings:
            del self._postings[term]

    def _compact(self) -> None:
        """Drop tombstoned entries from the postings lists."""
        dead = self._deleted
        for term in list(self._postings):
            live = [p for p in self._postings[term] if p.doc_key not in dead]
            if live:
                self._postings[term] = live
            else:
                del self._postings[term]
        self._deleted = {}

    # --------------------------------------------------------------- stats

    @property
    def num_docs(self) -> int:
        return len(self._doc_lengths)

    @property
    def collection_length(self) -> int:
        return sum(self._doc_lengths.values())

    @property
    def average_doc_length(self) -> float:
        return self.collection_length / self.num_docs if self.num_docs else 0.0

    def doc_length(self, key: str) -> int:
        return self._doc_lengths.get(key, 0)

    def document_frequency(self, term: str) -> int:
        return self._df.get(term, 0)

    def collection_frequency(self, term: str) -> int:
        return self._collection_tf.get(term, 0)

    def document_frequencies(self) -> Counter:
        """Copy of the full term -> document-frequency table.

        Snapshot accessor for cross-index statistics merging (the sharded
        lake's global-stats mode); exact under tombstones, like the per-term
        accessors.
        """
        return Counter(self._df)

    def collection_frequencies(self) -> Counter:
        """Copy of the full term -> collection-frequency table."""
        return Counter(self._collection_tf)

    def postings(self, term: str) -> list[Posting]:
        entries = self._postings.get(term, [])
        if self._deleted:
            return [p for p in entries if p.doc_key not in self._deleted]
        return entries

    def __contains__(self, key: str) -> bool:
        return key in self._doc_lengths

    def keys(self) -> list[str]:
        return list(self._doc_lengths)

    # -------------------------------------------------------- persistence

    def persistent_state(self) -> dict:
        """The live documents plus tombstones; postings and every corpus
        statistic are derived and rebuilt exactly on restore."""
        return {
            "docs": [(key, dict(tf)) for key, tf in self._doc_terms.items()],
            "deleted": {key: sorted(terms) for key, terms in self._deleted.items()},
        }

    @classmethod
    def restore_state(cls, state: dict) -> "InvertedIndex":
        index = cls()
        index.build_bulk(
            (key, Counter(tf)) for key, tf in state["docs"]
        )
        # Tombstones restored after the build: the fused bulk path requires
        # an empty ``_deleted``, and the restored map only gates the lazy
        # postings filter (statistics already reflect live docs only).
        index._deleted = {
            key: frozenset(terms) for key, terms in state["deleted"].items()
        }
        return index
