"""Term -> postings inverted index with corpus statistics."""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import NamedTuple

import numpy as np


class Posting(NamedTuple):
    """One (document, term) occurrence record.

    A NamedTuple rather than a frozen dataclass: the columnar bulk build
    constructs every posting of the corpus in one ``map`` pass, and tuple
    allocation is several times cheaper than a frozen dataclass ``__init__``
    (which pays two ``object.__setattr__`` calls per instance).
    """

    doc_key: str
    term_frequency: int


class InvertedIndex:
    """Inverted index over pre-tokenised term bags.

    Documents are added as ``(key, terms)`` where ``terms`` is any iterable
    of strings (typically the output of the text pipeline or a column's
    token bag). The index maintains the statistics both BM25 and
    LM-Dirichlet need: document frequencies, document lengths, collection
    term frequencies.

    Removal is tombstone-based: :meth:`remove` updates every corpus
    statistic exactly (so rankings match a cold-built index over the live
    documents) but leaves dead entries in the postings lists, which
    :meth:`postings` filters lazily; the lists are compacted once tombstones
    exceed :attr:`COMPACT_FRACTION` of the live document count.
    """

    #: Tombstone fraction (dead / live) that triggers postings compaction.
    COMPACT_FRACTION = 0.25

    def __init__(self) -> None:
        self._postings: dict[str, list[Posting]] = defaultdict(list)
        self._doc_lengths: dict[str, int] = {}
        self._collection_tf: Counter = Counter()
        self._doc_terms: dict[str, Counter] = {}
        self._df: Counter = Counter()
        #: Tombstoned key -> the terms its dead postings live under.
        self._deleted: dict[str, frozenset[str]] = {}

    # -------------------------------------------------------------- build

    def add(self, key: str, terms: list[str] | Counter) -> None:
        if key in self._doc_lengths:
            raise ValueError(f"duplicate index key {key!r}")
        dead_terms = self._deleted.pop(key, None)
        if dead_terms is not None:
            # Re-adding a tombstoned key: purge just its dead postings so
            # the new entry is the only one under this key.
            for term in dead_terms:
                self._purge_term(term, key)
        tf = terms if isinstance(terms, Counter) else Counter(terms)
        self._doc_lengths[key] = sum(tf.values())
        self._doc_terms[key] = tf.copy()
        for term, count in tf.items():
            self._postings[term].append(Posting(key, count))
            self._collection_tf[term] += count
            self._df[term] += 1

    def build_bulk(self, bags) -> None:
        """Add many ``(key, terms)`` documents in one columnar pass.

        State (postings content and order, corpus statistics, even dict
        insertion order) is identical to calling :meth:`add` per bag in the
        same order. Instead of the dict-bound per-(doc, term) loop, the
        build flattens every bag into one term slab with per-document
        spans, assigns term ids in first-occurrence order, takes document
        frequencies and collection frequencies from two ``np.bincount``
        passes over the id array, and slices each term's posting list out
        of one stable argsort grouping — the per-pair Python work drops to
        a single id lookup plus one tuple allocation. Used by the bulk
        index construction of :class:`~repro.core.indexes.IndexCatalog`.
        """
        if self._doc_lengths or self._deleted:
            # Non-empty or churned index: per-item add handles re-added
            # tombstoned keys correctly.
            for key, terms in bags:
                self.add(key, terms)
            return
        doc_lengths = self._doc_lengths
        doc_terms = self._doc_terms

        # ---- pass 1: normalise bags, fill per-document state, and flatten
        # every (term, count) pair into aligned slabs
        keys: list[str] = []
        term_slab: list[str] = []
        count_slab: list[int] = []
        doc_pair_counts: list[int] = []
        for key, terms in bags:
            if key in doc_lengths:
                raise ValueError(f"duplicate index key {key!r}")
            tf = terms if isinstance(terms, Counter) else Counter(terms)
            doc_lengths[key] = sum(tf.values())
            # .copy() is a C-level dict copy — same state as Counter(tf)
            # without re-counting every term through Python.
            doc_terms[key] = tf.copy()
            keys.append(key)
            doc_pair_counts.append(len(tf))
            term_slab.extend(tf.keys())
            count_slab.extend(tf.values())
        if not term_slab:
            return

        # ---- term ids in first-occurrence order (matching the insertion
        # order the per-item path would give every stats dict)
        term_id: dict[str, int] = {}
        next_id = term_id.setdefault
        ids = np.fromiter(
            (next_id(term, len(term_id)) for term in term_slab),
            dtype=np.intp,
            count=len(term_slab),
        )
        counts = np.asarray(count_slab, dtype=np.int64)
        num_terms = len(term_id)

        # ---- corpus statistics: two bincounts over the id array. The
        # weighted bincount sums exact integers in float64 (exact below
        # 2**53, far beyond any corpus this index serves).
        df_arr = np.bincount(ids, minlength=num_terms)
        ctf_arr = np.bincount(ids, weights=counts, minlength=num_terms).astype(
            np.int64
        )
        terms_in_order = list(term_id)
        self._df = Counter(dict(zip(terms_in_order, df_arr.tolist())))
        self._collection_tf = Counter(dict(zip(terms_in_order, ctf_arr.tolist())))

        # ---- postings: stable argsort groups pairs by term id while
        # keeping document order inside each group, so every term's slice
        # is its per-item posting list; one map constructs all postings.
        order = np.argsort(ids, kind="stable")
        doc_idx = np.repeat(np.arange(len(keys)), doc_pair_counts)
        ordered_keys = map(keys.__getitem__, doc_idx[order].tolist())
        all_postings = list(map(Posting, ordered_keys, counts[order].tolist()))
        group_sizes = df_arr.tolist()
        postings = self._postings
        start = 0
        for term, size in zip(terms_in_order, group_sizes):
            postings[term] = all_postings[start : start + size]
            start += size

    def remove(self, key: str) -> None:
        """Tombstone one document, keeping every corpus statistic exact."""
        if key not in self._doc_lengths:
            raise KeyError(f"no index entry for key {key!r}")
        tf = self._doc_terms.pop(key)
        del self._doc_lengths[key]
        for term, count in tf.items():
            self._collection_tf[term] -= count
            if self._collection_tf[term] <= 0:
                del self._collection_tf[term]
            self._df[term] -= 1
            if self._df[term] <= 0:
                del self._df[term]
        self._deleted[key] = frozenset(tf)
        if len(self._deleted) > self.COMPACT_FRACTION * max(self.num_docs, 1):
            self._compact()

    def _purge_term(self, term: str, key: str) -> None:
        live = [p for p in self._postings.get(term, ()) if p.doc_key != key]
        if live:
            self._postings[term] = live
        elif term in self._postings:
            del self._postings[term]

    def _compact(self) -> None:
        """Drop tombstoned entries from the postings lists."""
        dead = self._deleted
        for term in list(self._postings):
            live = [p for p in self._postings[term] if p.doc_key not in dead]
            if live:
                self._postings[term] = live
            else:
                del self._postings[term]
        self._deleted = {}

    # --------------------------------------------------------------- stats

    @property
    def num_docs(self) -> int:
        return len(self._doc_lengths)

    @property
    def collection_length(self) -> int:
        return sum(self._doc_lengths.values())

    @property
    def average_doc_length(self) -> float:
        return self.collection_length / self.num_docs if self.num_docs else 0.0

    def doc_length(self, key: str) -> int:
        return self._doc_lengths.get(key, 0)

    def document_frequency(self, term: str) -> int:
        return self._df.get(term, 0)

    def collection_frequency(self, term: str) -> int:
        return self._collection_tf.get(term, 0)

    def document_frequencies(self) -> Counter:
        """Copy of the full term -> document-frequency table.

        Snapshot accessor for cross-index statistics merging (the sharded
        lake's global-stats mode); exact under tombstones, like the per-term
        accessors.
        """
        return Counter(self._df)

    def collection_frequencies(self) -> Counter:
        """Copy of the full term -> collection-frequency table."""
        return Counter(self._collection_tf)

    def postings(self, term: str) -> list[Posting]:
        entries = self._postings.get(term, [])
        if self._deleted:
            return [p for p in entries if p.doc_key not in self._deleted]
        return entries

    def __contains__(self, key: str) -> bool:
        return key in self._doc_lengths

    def keys(self) -> list[str]:
        return list(self._doc_lengths)

    # -------------------------------------------------------- persistence

    def persistent_state(self) -> dict:
        """The live documents plus tombstones; postings and every corpus
        statistic are derived and rebuilt exactly on restore."""
        return {
            "docs": [(key, dict(tf)) for key, tf in self._doc_terms.items()],
            "deleted": {key: sorted(terms) for key, terms in self._deleted.items()},
        }

    @classmethod
    def restore_state(cls, state: dict) -> "InvertedIndex":
        index = cls()
        index.build_bulk(
            (key, Counter(tf)) for key, tf in state["docs"]
        )
        # Tombstones restored after the build: the fused bulk path requires
        # an empty ``_deleted``, and the restored map only gates the lazy
        # postings filter (statistics already reflect live docs only).
        index._deleted = {
            key: frozenset(terms) for key, terms in state["deleted"].items()
        }
        return index
