"""Term -> postings inverted index with corpus statistics."""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass


@dataclass(frozen=True)
class Posting:
    """One (document, term) occurrence record."""

    doc_key: str
    term_frequency: int


class InvertedIndex:
    """Inverted index over pre-tokenised term bags.

    Documents are added as ``(key, terms)`` where ``terms`` is any iterable
    of strings (typically the output of the text pipeline or a column's
    token bag). The index maintains the statistics both BM25 and
    LM-Dirichlet need: document frequencies, document lengths, collection
    term frequencies.
    """

    def __init__(self) -> None:
        self._postings: dict[str, list[Posting]] = defaultdict(list)
        self._doc_lengths: dict[str, int] = {}
        self._collection_tf: Counter = Counter()

    # -------------------------------------------------------------- build

    def add(self, key: str, terms: list[str] | Counter) -> None:
        if key in self._doc_lengths:
            raise ValueError(f"duplicate index key {key!r}")
        tf = terms if isinstance(terms, Counter) else Counter(terms)
        self._doc_lengths[key] = sum(tf.values())
        for term, count in tf.items():
            self._postings[term].append(Posting(key, count))
            self._collection_tf[term] += count

    # --------------------------------------------------------------- stats

    @property
    def num_docs(self) -> int:
        return len(self._doc_lengths)

    @property
    def collection_length(self) -> int:
        return sum(self._doc_lengths.values())

    @property
    def average_doc_length(self) -> float:
        return self.collection_length / self.num_docs if self.num_docs else 0.0

    def doc_length(self, key: str) -> int:
        return self._doc_lengths.get(key, 0)

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def collection_frequency(self, term: str) -> int:
        return self._collection_tf.get(term, 0)

    def postings(self, term: str) -> list[Posting]:
        return self._postings.get(term, [])

    def __contains__(self, key: str) -> bool:
        return key in self._doc_lengths

    def keys(self) -> list[str]:
        return list(self._doc_lengths)
