"""Keyword-search substrate: an in-process "elastic search" engine.

CMDL maintains BM25 indexes on both content and metadata of documents and
tabular columns (paper §3), and the evaluation additionally compares against
an LM-Dirichlet ranking (Figure 6). This package provides an inverted index
with both scoring functions, equivalent in semantics to the Elasticsearch
configuration the paper uses, but fully in-process.
"""

from repro.search.inverted_index import InvertedIndex, Posting
from repro.search.scoring import BM25Scorer, LMDirichletScorer
from repro.search.engine import SearchEngine

__all__ = [
    "InvertedIndex",
    "Posting",
    "BM25Scorer",
    "LMDirichletScorer",
    "SearchEngine",
]
