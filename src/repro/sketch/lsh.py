"""Banded Locality Sensitive Hashing index over minhash signatures.

Standard banding scheme: a signature of k hash values is split into b bands
of r = k/b rows; two sets collide if any band hashes identically. With
Jaccard similarity s the collision probability is 1 - (1 - s^r)^b, an S-curve
whose threshold ~ (1/b)^(1/r).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.sketch.minhash import MinHashSignature, band_hashes_batch


class LSHIndex:
    """LSH index supporting candidate retrieval and score-ranked top-k query.

    Candidates come from band-bucket collisions; the final ranking re-scores
    candidates with the (estimated) Jaccard similarity of full signatures, so
    the index never returns false positives above a true-similar entry.
    """

    def __init__(self, num_bands: int = 16):
        if num_bands <= 0:
            raise ValueError(f"num_bands must be positive, got {num_bands}")
        self.num_bands = num_bands
        self._buckets: list[dict[int, list[str]]] = [
            defaultdict(list) for _ in range(num_bands)
        ]
        self._signatures: dict[str, MinHashSignature] = {}

    # -------------------------------------------------------------- build

    def add(self, key: str, signature: MinHashSignature) -> None:
        if key in self._signatures:
            raise ValueError(f"duplicate LSH key {key!r}")
        self._signatures[key] = signature
        for band, h in enumerate(signature.band_hashes(self.num_bands)):
            self._buckets[band][h].append(key)

    def build_bulk(
        self,
        entries: list[tuple[str, MinHashSignature]],
        band_matrix: np.ndarray | None = None,
    ) -> "LSHIndex":
        """Ingest a whole ``(key, signature)`` batch in one columnar pass.

        The band matrix for every signature comes from one
        :func:`~repro.sketch.minhash.band_hashes_batch` kernel call (callers
        that already hold the slab — the LSH-Ensemble build — pass their
        row slice via ``band_matrix``), and bucket postings are assembled a
        band *column* at a time. Entry order matches per-item :meth:`add`
        calls, so the built index is identical to the incremental path.
        """
        if not entries:
            return self
        for key, _ in entries:
            if key in self._signatures:
                raise ValueError(f"duplicate LSH key {key!r}")
        if band_matrix is None:
            band_matrix = band_hashes_batch(
                [signature for _, signature in entries], self.num_bands
            )
        else:
            # A caller-provided slab skips the kernel; seed the per-signature
            # memos from it so the delta paths never recompute bands.
            for (_, signature), row in zip(entries, band_matrix):
                if self.num_bands not in signature._band_memo:
                    signature._band_memo[self.num_bands] = [int(h) for h in row]
        for key, signature in entries:
            self._signatures[key] = signature
        keys = [key for key, _ in entries]
        for band in range(self.num_bands):
            buckets = self._buckets[band]
            for key, h in zip(keys, band_matrix[:, band].tolist()):
                buckets[h].append(key)
        return self

    def remove(self, key: str) -> None:
        """Delete one entry (bucket lists are short: band-local collisions)."""
        signature = self._signatures.pop(key, None)
        if signature is None:
            raise KeyError(f"no LSH entry for key {key!r}")
        for band, h in enumerate(signature.band_hashes(self.num_bands)):
            bucket = self._buckets[band][h]
            bucket.remove(key)
            if not bucket:
                del self._buckets[band][h]

    def __len__(self) -> int:
        return len(self._signatures)

    def __contains__(self, key: str) -> bool:
        return key in self._signatures

    def signature_of(self, key: str) -> MinHashSignature:
        return self._signatures[key]

    def keys(self) -> list[str]:
        """All indexed keys, in insertion order."""
        return list(self._signatures)

    def items(self) -> list[tuple[str, MinHashSignature]]:
        """All ``(key, signature)`` pairs, in insertion order."""
        return list(self._signatures.items())

    # -------------------------------------------------------- persistence

    def persistent_state(self) -> dict:
        """Signatures as one slab; buckets are derived and rebuilt on restore
        (the band family is process-wide deterministic, so the rebuilt
        buckets are identical — including per-band insertion order)."""
        keys = list(self._signatures)
        signatures = [self._signatures[key] for key in keys]
        if signatures:
            values = np.stack([s.values for s in signatures])
            num_hashes = signatures[0].num_hashes
            seed = signatures[0].seed
        else:
            values = np.zeros((0, 0), dtype=np.uint64)
            num_hashes = 0
            seed = 0
        return {
            "num_bands": self.num_bands,
            "keys": keys,
            "values": values,
            "set_sizes": np.array([s.set_size for s in signatures], dtype=np.int64),
            "num_hashes": num_hashes,
            "seed": seed,
        }

    @classmethod
    def restore_state(cls, state: dict) -> "LSHIndex":
        index = cls(num_bands=state["num_bands"])
        keys = state["keys"]
        values = np.asarray(state["values"], dtype=np.uint64)
        set_sizes = state["set_sizes"]
        signatures = [
            MinHashSignature(
                values=values[i],
                set_size=int(set_sizes[i]),
                num_hashes=state["num_hashes"],
                seed=state["seed"],
            )
            for i in range(len(keys))
        ]
        index.build_bulk(list(zip(keys, signatures)))
        return index

    # -------------------------------------------------------------- query

    def candidates(self, signature: MinHashSignature) -> set[str]:
        """Keys colliding with the query in at least one band."""
        found: set[str] = set()
        for band, h in enumerate(signature.band_hashes(self.num_bands)):
            found.update(self._buckets[band].get(h, ()))
        return found

    def query(
        self, signature: MinHashSignature, k: int = 10, exclude: set[str] | None = None
    ) -> list[tuple[str, float]]:
        """Top-k keys by estimated Jaccard similarity among band candidates.

        Falls back to a full scan when banding yields no candidates (small
        indexes / low-similarity regimes), so the method is total.
        """
        exclude = exclude or set()
        candidate_keys = self.candidates(signature) - exclude
        if not candidate_keys:
            candidate_keys = set(self._signatures) - exclude
        scored = [
            (key, signature.jaccard(self._signatures[key])) for key in candidate_keys
        ]
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[:k]
