"""Minwise-hashing sketches and LSH indexes.

Implements the containment-search substrate CMDL relies on (paper §3):
minhash signatures, a banded LSH index for Jaccard-similarity search, and the
LSH Ensemble of Zhu et al. (VLDB 2016) for Jaccard *set containment* search,
which partitions the indexed sets by size so the asymmetric containment
measure remains accurate under skewed cardinalities.
"""

from repro.sketch.fingerprints import FingerprintCache
from repro.sketch.minhash import MinHash, MinHashSignature
from repro.sketch.lsh import LSHIndex
from repro.sketch.lshensemble import LSHEnsemble

__all__ = [
    "FingerprintCache",
    "MinHash",
    "MinHashSignature",
    "LSHIndex",
    "LSHEnsemble",
]
