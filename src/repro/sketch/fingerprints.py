"""Per-fit fingerprint cache: each distinct string is hashed exactly once.

Minhash signatures consume *fingerprints* — ``stable_hash_32(item, seed) %
UNIVERSAL_HASH_PRIME`` — and a cold fit sketches every column twice (content
tokens and raw value set) plus every document, with heavy string overlap
between the sets (ids, categories, and vocabulary terms recur across the
lake). The per-item path pays one blake2b call per occurrence; the cache
pays one per *distinct* string and serves every further occurrence from a
dict lookup, returning ready-to-hash uint64 arrays for whole sets at once.

A cache is scoped to one ``(seed,)`` hash family — :class:`MinHash` owns the
family coefficients, the cache owns the string -> fingerprint map. The
profiler creates one per fit and threads it through every signature built
for that lake (content and value sketches alike), which is what makes
:meth:`MinHash.signatures_batch` a pure array computation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.hashing import UNIVERSAL_HASH_PRIME, stable_hash_32


def raw_fingerprint(item: str, seed: int = 0) -> int:
    """The minhash fingerprint of one string — the single home of the
    formula; cached and uncached signature paths both call this."""
    return stable_hash_32(item, seed) % UNIVERSAL_HASH_PRIME


class FingerprintCache:
    """String -> uint64 minhash fingerprint map with bulk array lookup.

    Bounded: a cold fit resets its cache, but the delta path keeps feeding
    the same instance for a session's whole lifetime, so past
    :attr:`MAX_ENTRIES` the map stops growing (fingerprints are still
    computed, just not retained) rather than interning every string the
    lake has ever contained.
    """

    #: Retention bound (~100 bytes/entry -> tens of MB worst case).
    MAX_ENTRIES = 1 << 20

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._map: dict[str, int] = {}
        #: Distinct strings hashed (== len(self)) vs total strings served;
        #: the gap is the blake2b work the cache saved.
        self.hits = 0
        self.misses = 0

    def fingerprint(self, item: str) -> int:
        """The fingerprint of one string (hashed on first sight only)."""
        value = self._map.get(item)
        if value is None:
            value = raw_fingerprint(item, self.seed)
            if len(self._map) < self.MAX_ENTRIES:
                self._map[item] = value
            self.misses += 1
        else:
            self.hits += 1
        return value

    def fingerprints(self, items) -> np.ndarray:
        """Fingerprints of an iterable of strings as a uint64 array.

        Iteration order is preserved (callers that feed sets get whatever
        order the set yields — fingerprint consumers are order-free).
        """
        get = self._map.get
        cache = self._map
        bound = self.MAX_ENTRIES
        out = []
        misses = 0
        seed = self.seed
        for item in items:
            value = get(item)
            if value is None:
                value = raw_fingerprint(item, seed)
                if len(cache) < bound:
                    cache[item] = value
                misses += 1
            out.append(value)
        self.misses += misses
        self.hits += len(out) - misses
        return np.array(out, dtype=np.uint64)

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, item: str) -> bool:
        return item in self._map

    def __repr__(self) -> str:
        return (
            f"FingerprintCache(seed={self.seed}, distinct={len(self._map)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
