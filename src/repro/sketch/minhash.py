"""Minwise hashing signatures.

A MinHash signature of a set S stores, for k independent hash functions, the
minimum hash value over S. The fraction of agreeing components between two
signatures is an unbiased estimator of their Jaccard similarity; combined
with the true set sizes it also estimates containment (Zhu et al. 2016):

    containment(Q, X) ≈ j * (|Q| + |X|) / ((1 + j) * |Q|)

where j is the estimated Jaccard similarity.

Hashing uses the universal family h(x) = (a*x + b) mod p with the Mersenne
prime p = 2^31 - 1, so that a*x fits in uint64 and the whole signature
computation vectorises over items and hash functions at once.
"""

from __future__ import annotations

import numpy as np

from repro.utils.hashing import stable_hash_32, stable_hash_64

# 2^31 - 1: products a*x stay below 2^62, safely inside uint64.
MINHASH_PRIME = (1 << 31) - 1


class MinHash:
    """Factory for fixed-width minhash signatures sharing one hash family."""

    def __init__(self, num_hashes: int = 128, seed: int = 0):
        if num_hashes <= 0:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        self.num_hashes = num_hashes
        self.seed = seed
        self._a = np.array(
            [stable_hash_32(f"minhash-a-{i}", seed) % (MINHASH_PRIME - 1) + 1
             for i in range(num_hashes)],
            dtype=np.uint64,
        )
        self._b = np.array(
            [stable_hash_32(f"minhash-b-{i}", seed) % MINHASH_PRIME
             for i in range(num_hashes)],
            dtype=np.uint64,
        )

    def signature(self, items: set[str] | list[str]) -> "MinHashSignature":
        """Compute the signature of a set of string items."""
        distinct = set(items)
        if not distinct:
            return MinHashSignature(
                values=np.full(self.num_hashes, MINHASH_PRIME, dtype=np.uint64),
                set_size=0,
                num_hashes=self.num_hashes,
                seed=self.seed,
            )
        fingerprints = np.array(
            [stable_hash_32(item, self.seed) % MINHASH_PRIME for item in distinct],
            dtype=np.uint64,
        )
        # (k, n) = a[:,None] * x[None,:] + b[:,None], all exact in uint64.
        hashed = (self._a[:, None] * fingerprints[None, :] + self._b[:, None]) % np.uint64(
            MINHASH_PRIME
        )
        return MinHashSignature(
            values=hashed.min(axis=1),
            set_size=len(distinct),
            num_hashes=self.num_hashes,
            seed=self.seed,
        )


class MinHashSignature:
    """A computed minhash signature with Jaccard / containment estimators."""

    def __init__(self, values: np.ndarray, set_size: int, num_hashes: int, seed: int):
        self.values = values
        self.set_size = set_size
        self.num_hashes = num_hashes
        self.seed = seed

    def _check_compatible(self, other: "MinHashSignature") -> None:
        if self.num_hashes != other.num_hashes or self.seed != other.seed:
            raise ValueError(
                "signatures are incomparable: built with different hash families "
                f"({self.num_hashes}/{self.seed} vs {other.num_hashes}/{other.seed})"
            )

    def jaccard(self, other: "MinHashSignature") -> float:
        """Estimate Jaccard similarity as the fraction of matching components."""
        self._check_compatible(other)
        if self.set_size == 0 and other.set_size == 0:
            return 0.0
        return float(np.mean(self.values == other.values))

    def containment(self, other: "MinHashSignature") -> float:
        """Estimate containment of *this* set in ``other`` (|A∩B| / |A|)."""
        self._check_compatible(other)
        if self.set_size == 0:
            return 0.0
        j = self.jaccard(other)
        estimate = j * (self.set_size + other.set_size) / ((1.0 + j) * self.set_size)
        return float(min(1.0, max(0.0, estimate)))

    def band_hashes(self, num_bands: int) -> list[int]:
        """Hash the signature into ``num_bands`` band buckets (for LSH)."""
        if self.num_hashes % num_bands != 0:
            raise ValueError(
                f"num_hashes ({self.num_hashes}) not divisible by bands ({num_bands})"
            )
        rows = self.num_hashes // num_bands
        out = []
        for band in range(num_bands):
            chunk = self.values[band * rows : (band + 1) * rows]
            out.append(stable_hash_64(chunk.tobytes(), seed=band))
        return out

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MinHashSignature)
            and self.num_hashes == other.num_hashes
            and self.seed == other.seed
            and bool(np.all(self.values == other.values))
        )

    def __repr__(self) -> str:
        return f"MinHashSignature(k={self.num_hashes}, |S|={self.set_size})"
