"""Minwise hashing signatures.

A MinHash signature of a set S stores, for k independent hash functions, the
minimum hash value over S. The fraction of agreeing components between two
signatures is an unbiased estimator of their Jaccard similarity; combined
with the true set sizes it also estimates containment (Zhu et al. 2016):

    containment(Q, X) ≈ j * (|Q| + |X|) / ((1 + j) * |Q|)

where j is the estimated Jaccard similarity.

The hash family is the shared vectorised universal family of
:mod:`repro.utils.hashing` (h(x) = (a*x + b) mod (2^31 - 1); see that module
for the prime choice). Because min is exact and order-free,
:meth:`MinHash.signatures_batch` computes the signatures of many sets in one
``np.minimum.reduceat`` pass over their concatenated fingerprints and is
byte-identical to calling :meth:`MinHash.signature` per set.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.fingerprints import FingerprintCache, raw_fingerprint
from repro.utils.hashing import (
    UNIVERSAL_HASH_PRIME,
    stable_hash_32,
    universal_hash_family,
)

#: Re-export: minhash arithmetic works modulo the shared universal prime.
MINHASH_PRIME = UNIVERSAL_HASH_PRIME

#: Batched signature computation caps each (num_hashes, chunk) work matrix
#: at roughly this many fingerprints per slab to bound peak memory.
_BATCH_CHUNK_ITEMS = 1 << 15

#: (num_bands, rows) -> coefficient arrays of the banded-LSH mixing family.
_BAND_FAMILY_CACHE: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}


def _band_family(num_bands: int, rows: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-band universal mixing coefficients for the band-hash kernel.

    Band ``b`` hashes its ``rows`` signature components with
    ``(sum_i c[b,i] * v[i] + d[b]) mod p`` — a pairwise-independent family
    per band, derived deterministically from ``(band, row)`` alone so every
    process (and every signature seed) shares one table. Distinct bands get
    independent coefficients, which is what keeps inter-band collisions at
    the 1/p floor.
    """
    key = (num_bands, rows)
    family = _BAND_FAMILY_CACHE.get(key)
    if family is None:
        p = UNIVERSAL_HASH_PRIME
        c = np.array(
            [
                [stable_hash_32(f"lsh-band-{band}-{i}") % (p - 1) + 1
                 for i in range(rows)]
                for band in range(num_bands)
            ],
            dtype=np.uint64,
        )
        d = np.array(
            [stable_hash_32(f"lsh-band-offset-{band}") % p
             for band in range(num_bands)],
            dtype=np.uint64,
        )
        family = (c, d)
        _BAND_FAMILY_CACHE[key] = family
    return family


def band_hashes_matrix(values: np.ndarray, num_bands: int) -> np.ndarray:
    """Band-bucket hashes for a whole ``(n, num_hashes)`` signature slab.

    The columnar kernel of the LSH build path: the slab is viewed as
    ``(n, num_bands, rows)`` and each band column is reduced with its own
    exact-mod-p universal mix (a 2-D reduce — the row loop is ``rows`` long,
    every step vectorised over all signatures and bands at once). Returns a
    ``(n, num_bands)`` uint64 matrix; row ``i`` equals
    ``MinHashSignature.band_hashes`` of signature ``i`` by construction,
    which is the parity contract the kernel tests pin.
    """
    if values.ndim != 2:
        raise ValueError(f"expected a 2-D signature slab, got ndim={values.ndim}")
    n, num_hashes = values.shape
    if num_hashes % num_bands != 0:
        raise ValueError(
            f"num_hashes ({num_hashes}) not divisible by bands ({num_bands})"
        )
    rows = num_hashes // num_bands
    c, d = _band_family(num_bands, rows)
    slab = values.reshape(n, num_bands, rows)
    p = np.uint64(MINHASH_PRIME)
    # acc stays < p and each product stays < 2**62, so uint64 is exact.
    acc = np.broadcast_to(d, (n, num_bands)).copy()
    for i in range(rows):
        acc = (acc + (c[:, i] * slab[:, :, i]) % p) % p
    return acc


def band_hashes_batch(
    signatures: list["MinHashSignature"], num_bands: int
) -> np.ndarray:
    """Band hashes of many signatures in one kernel pass.

    Stacks the signature values into one slab, runs
    :func:`band_hashes_matrix`, and seeds every signature's per-band memo so
    later per-key probes (:meth:`MinHashSignature.band_hashes`) are dict
    lookups. Returns the ``(len(signatures), num_bands)`` matrix.
    """
    if not signatures:
        return np.zeros((0, num_bands), dtype=np.uint64)
    matrix = band_hashes_matrix(
        np.stack([s.values for s in signatures]), num_bands
    )
    for signature, row in zip(signatures, matrix):
        if num_bands not in signature._band_memo:
            signature._band_memo[num_bands] = [int(h) for h in row]
    return matrix


class MinHash:
    """Factory for fixed-width minhash signatures sharing one hash family."""

    def __init__(self, num_hashes: int = 128, seed: int = 0):
        if num_hashes <= 0:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        self.num_hashes = num_hashes
        self.seed = seed
        self._a, self._b = universal_hash_family(num_hashes, seed, tag="minhash")

    def _check_cache(self, cache: FingerprintCache) -> None:
        if cache.seed != self.seed:
            raise ValueError(
                f"fingerprint cache seed {cache.seed} does not match the "
                f"hash family seed {self.seed}; signatures would be wrong"
            )

    def _empty_signature(self) -> "MinHashSignature":
        return MinHashSignature(
            values=np.full(self.num_hashes, MINHASH_PRIME, dtype=np.uint64),
            set_size=0,
            num_hashes=self.num_hashes,
            seed=self.seed,
        )

    def signature(
        self,
        items: set[str] | frozenset[str] | list[str],
        cache: FingerprintCache | None = None,
    ) -> "MinHashSignature":
        """Compute the signature of a set of string items.

        ``cache`` (a :class:`FingerprintCache` for this seed) serves repeated
        strings without re-hashing; the profiler shares one per fit.
        """
        distinct = items if isinstance(items, (set, frozenset)) else set(items)
        if not distinct:
            return self._empty_signature()
        if cache is not None:
            self._check_cache(cache)
            fingerprints = cache.fingerprints(distinct)
        else:
            fingerprints = np.array(
                [raw_fingerprint(item, self.seed) for item in distinct],
                dtype=np.uint64,
            )
        # (k, n) = a[:,None] * x[None,:] + b[:,None], all exact in uint64.
        hashed = (self._a[:, None] * fingerprints[None, :] + self._b[:, None]) % np.uint64(
            MINHASH_PRIME
        )
        return MinHashSignature(
            values=hashed.min(axis=1),
            set_size=len(distinct),
            num_hashes=self.num_hashes,
            seed=self.seed,
        )

    def signatures_batch(
        self,
        sets: list[set[str] | frozenset[str] | list[str]],
        cache: FingerprintCache | None = None,
    ) -> list["MinHashSignature"]:
        """Signatures of many sets in one vectorised pass.

        Fingerprints of all sets are concatenated into one uint64 array, the
        hash family is applied to whole slabs at once, and per-set minima
        come from ``np.minimum.reduceat`` over the set offsets. Exact-min
        arithmetic makes the result byte-identical to per-set
        :meth:`signature` calls; empty sets yield the canonical empty
        signature. Peak memory is bounded by slabbing the concatenation at
        ~``2**15`` fingerprints (whole sets only).
        """
        if cache is None:
            cache = FingerprintCache(self.seed)
        else:
            self._check_cache(cache)
        out: list[MinHashSignature | None] = [None] * len(sets)

        # One slab = a run of non-empty sets whose total item count fits the
        # chunk budget (a single oversized set still forms its own slab).
        slab_sets: list[tuple[int, np.ndarray, int]] = []  # (out idx, fp, size)
        slab_items = 0

        def flush() -> None:
            nonlocal slab_sets, slab_items
            if not slab_sets:
                return
            concat = np.concatenate([fp for _, fp, _ in slab_sets])
            # Lakes repeat strings heavily (ids, categories, shared vocab),
            # so the slab usually holds far fewer distinct fingerprints than
            # items: hash each distinct fingerprint once and gather, instead
            # of running the multiply-add-mod over every occurrence. Same
            # arithmetic per element — minima are byte-identical.
            distinct, inverse = np.unique(concat, return_inverse=True)
            hashed = (
                (distinct[:, None] * self._a[None, :] + self._b[None, :])
                % np.uint64(MINHASH_PRIME)
            )
            # Layout and dtype are chosen for the slab's two heavy passes:
            # (items, hashes) orientation makes the occurrence gather a
            # contiguous row gather, and hashed values are < 2**31 (Mersenne
            # modulus), so both passes run in uint32 at half the memory
            # traffic. Per-set minima come from a contiguous-block
            # ``.min(axis=0)`` per set — ~10x faster than one
            # ``np.minimum.reduceat`` call over the slab, whose generic
            # segment loop defeats the vectorised reduction. Minima widen
            # back to uint64 exactly; min is exact and order-free, so
            # signatures stay byte-equal to the per-set path.
            gathered = hashed.astype(np.uint32)[inverse]
            start = 0
            for index, fp, size in slab_sets:
                end = start + len(fp)
                out[index] = MinHashSignature(
                    values=gathered[start:end].min(axis=0).astype(np.uint64),
                    set_size=size,
                    num_hashes=self.num_hashes,
                    seed=self.seed,
                )
                start = end
            slab_sets = []
            slab_items = 0

        for index, items in enumerate(sets):
            distinct = items if isinstance(items, (set, frozenset)) else set(items)
            if not distinct:
                out[index] = self._empty_signature()
                continue
            if slab_items and slab_items + len(distinct) > _BATCH_CHUNK_ITEMS:
                flush()
            slab_sets.append((index, cache.fingerprints(distinct), len(distinct)))
            slab_items += len(distinct)
        flush()
        return out  # type: ignore[return-value]


class MinHashSignature:
    """A computed minhash signature with Jaccard / containment estimators."""

    def __init__(self, values: np.ndarray, set_size: int, num_hashes: int, seed: int):
        self.values = values
        self.set_size = set_size
        self.num_hashes = num_hashes
        self.seed = seed
        #: num_bands -> band-bucket hashes. Signatures are immutable once
        #: built, so bands are computed at most once per banding width —
        #: the LSH delta paths (add/remove/insert) re-derive nothing, and
        #: the bulk kernel (:func:`band_hashes_batch`) pre-seeds the memo.
        self._band_memo: dict[int, list[int]] = {}

    def _check_compatible(self, other: "MinHashSignature") -> None:
        if self.num_hashes != other.num_hashes or self.seed != other.seed:
            raise ValueError(
                "signatures are incomparable: built with different hash families "
                f"({self.num_hashes}/{self.seed} vs {other.num_hashes}/{other.seed})"
            )

    def jaccard(self, other: "MinHashSignature") -> float:
        """Estimate Jaccard similarity as the fraction of matching components."""
        self._check_compatible(other)
        return self._jaccard_unchecked(other)

    def _jaccard_unchecked(self, other: "MinHashSignature") -> float:
        if self.set_size == 0 and other.set_size == 0:
            return 0.0
        return float(np.mean(self.values == other.values))

    def containment(self, other: "MinHashSignature") -> float:
        """Estimate containment of *this* set in ``other`` (|A∩B| / |A|)."""
        self._check_compatible(other)
        if self.set_size == 0:
            return 0.0
        j = self._jaccard_unchecked(other)
        estimate = j * (self.set_size + other.set_size) / ((1.0 + j) * self.set_size)
        return float(min(1.0, max(0.0, estimate)))

    def band_hashes(self, num_bands: int) -> list[int]:
        """Hash the signature into ``num_bands`` band buckets (for LSH).

        The single-row case of :func:`band_hashes_matrix`, memoised per
        ``num_bands``: two signatures with identical values in a band get
        identical bucket hashes, distinct bands mix with independent
        coefficients. (Formerly one blake2b call per band per signature —
        the per-key Python loop the columnar LSH build replaced.)
        """
        memoised = self._band_memo.get(num_bands)
        if memoised is None:
            row = band_hashes_matrix(self.values[None, :], num_bands)[0]
            memoised = [int(h) for h in row]
            self._band_memo[num_bands] = memoised
        return memoised

    # -------------------------------------------------------- persistence

    def __getstate__(self) -> dict:
        # The band memo is a derived cache keyed by a process-wide
        # deterministic family; re-derivable, so never persisted.
        state = dict(self.__dict__)
        del state["_band_memo"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._band_memo = {}

    def persistent_state(self) -> dict:
        """The minimal durable state (band memos excluded, recomputable)."""
        return {
            "values": self.values,
            "set_size": self.set_size,
            "num_hashes": self.num_hashes,
            "seed": self.seed,
        }

    @classmethod
    def restore_state(cls, state: dict) -> "MinHashSignature":
        return cls(
            values=np.asarray(state["values"], dtype=np.uint64),
            set_size=state["set_size"],
            num_hashes=state["num_hashes"],
            seed=state["seed"],
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MinHashSignature)
            and self.num_hashes == other.num_hashes
            and self.seed == other.seed
            and bool(np.all(self.values == other.values))
        )

    def __repr__(self) -> str:
        return f"MinHashSignature(k={self.num_hashes}, |S|={self.set_size})"
