"""Minwise hashing signatures.

A MinHash signature of a set S stores, for k independent hash functions, the
minimum hash value over S. The fraction of agreeing components between two
signatures is an unbiased estimator of their Jaccard similarity; combined
with the true set sizes it also estimates containment (Zhu et al. 2016):

    containment(Q, X) ≈ j * (|Q| + |X|) / ((1 + j) * |Q|)

where j is the estimated Jaccard similarity.

The hash family is the shared vectorised universal family of
:mod:`repro.utils.hashing` (h(x) = (a*x + b) mod (2^31 - 1); see that module
for the prime choice). Because min is exact and order-free,
:meth:`MinHash.signatures_batch` computes the signatures of many sets in one
``np.minimum.reduceat`` pass over their concatenated fingerprints and is
byte-identical to calling :meth:`MinHash.signature` per set.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.fingerprints import FingerprintCache, raw_fingerprint
from repro.utils.hashing import (
    UNIVERSAL_HASH_PRIME,
    stable_hash_64,
    universal_hash_family,
)

#: Re-export: minhash arithmetic works modulo the shared universal prime.
MINHASH_PRIME = UNIVERSAL_HASH_PRIME

#: Batched signature computation caps each (num_hashes, chunk) work matrix
#: at roughly this many fingerprints per slab to bound peak memory.
_BATCH_CHUNK_ITEMS = 1 << 15


class MinHash:
    """Factory for fixed-width minhash signatures sharing one hash family."""

    def __init__(self, num_hashes: int = 128, seed: int = 0):
        if num_hashes <= 0:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        self.num_hashes = num_hashes
        self.seed = seed
        self._a, self._b = universal_hash_family(num_hashes, seed, tag="minhash")

    def _check_cache(self, cache: FingerprintCache) -> None:
        if cache.seed != self.seed:
            raise ValueError(
                f"fingerprint cache seed {cache.seed} does not match the "
                f"hash family seed {self.seed}; signatures would be wrong"
            )

    def _empty_signature(self) -> "MinHashSignature":
        return MinHashSignature(
            values=np.full(self.num_hashes, MINHASH_PRIME, dtype=np.uint64),
            set_size=0,
            num_hashes=self.num_hashes,
            seed=self.seed,
        )

    def signature(
        self,
        items: set[str] | frozenset[str] | list[str],
        cache: FingerprintCache | None = None,
    ) -> "MinHashSignature":
        """Compute the signature of a set of string items.

        ``cache`` (a :class:`FingerprintCache` for this seed) serves repeated
        strings without re-hashing; the profiler shares one per fit.
        """
        distinct = items if isinstance(items, (set, frozenset)) else set(items)
        if not distinct:
            return self._empty_signature()
        if cache is not None:
            self._check_cache(cache)
            fingerprints = cache.fingerprints(distinct)
        else:
            fingerprints = np.array(
                [raw_fingerprint(item, self.seed) for item in distinct],
                dtype=np.uint64,
            )
        # (k, n) = a[:,None] * x[None,:] + b[:,None], all exact in uint64.
        hashed = (self._a[:, None] * fingerprints[None, :] + self._b[:, None]) % np.uint64(
            MINHASH_PRIME
        )
        return MinHashSignature(
            values=hashed.min(axis=1),
            set_size=len(distinct),
            num_hashes=self.num_hashes,
            seed=self.seed,
        )

    def signatures_batch(
        self,
        sets: list[set[str] | frozenset[str] | list[str]],
        cache: FingerprintCache | None = None,
    ) -> list["MinHashSignature"]:
        """Signatures of many sets in one vectorised pass.

        Fingerprints of all sets are concatenated into one uint64 array, the
        hash family is applied to whole slabs at once, and per-set minima
        come from ``np.minimum.reduceat`` over the set offsets. Exact-min
        arithmetic makes the result byte-identical to per-set
        :meth:`signature` calls; empty sets yield the canonical empty
        signature. Peak memory is bounded by slabbing the concatenation at
        ~``2**15`` fingerprints (whole sets only).
        """
        if cache is None:
            cache = FingerprintCache(self.seed)
        else:
            self._check_cache(cache)
        out: list[MinHashSignature | None] = [None] * len(sets)

        # One slab = a run of non-empty sets whose total item count fits the
        # chunk budget (a single oversized set still forms its own slab).
        slab_sets: list[tuple[int, np.ndarray, int]] = []  # (out idx, fp, size)
        slab_items = 0

        def flush() -> None:
            nonlocal slab_sets, slab_items
            if not slab_sets:
                return
            concat = np.concatenate([fp for _, fp, _ in slab_sets])
            offsets = np.cumsum([0] + [len(fp) for _, fp, _ in slab_sets[:-1]])
            hashed = (
                self._a[:, None] * concat[None, :] + self._b[:, None]
            ) % np.uint64(MINHASH_PRIME)
            minima = np.minimum.reduceat(hashed, offsets, axis=1)
            for column, (index, _, size) in enumerate(slab_sets):
                out[index] = MinHashSignature(
                    values=minima[:, column].copy(),
                    set_size=size,
                    num_hashes=self.num_hashes,
                    seed=self.seed,
                )
            slab_sets = []
            slab_items = 0

        for index, items in enumerate(sets):
            distinct = items if isinstance(items, (set, frozenset)) else set(items)
            if not distinct:
                out[index] = self._empty_signature()
                continue
            if slab_items and slab_items + len(distinct) > _BATCH_CHUNK_ITEMS:
                flush()
            slab_sets.append((index, cache.fingerprints(distinct), len(distinct)))
            slab_items += len(distinct)
        flush()
        return out  # type: ignore[return-value]


class MinHashSignature:
    """A computed minhash signature with Jaccard / containment estimators."""

    def __init__(self, values: np.ndarray, set_size: int, num_hashes: int, seed: int):
        self.values = values
        self.set_size = set_size
        self.num_hashes = num_hashes
        self.seed = seed

    def _check_compatible(self, other: "MinHashSignature") -> None:
        if self.num_hashes != other.num_hashes or self.seed != other.seed:
            raise ValueError(
                "signatures are incomparable: built with different hash families "
                f"({self.num_hashes}/{self.seed} vs {other.num_hashes}/{other.seed})"
            )

    def jaccard(self, other: "MinHashSignature") -> float:
        """Estimate Jaccard similarity as the fraction of matching components."""
        self._check_compatible(other)
        return self._jaccard_unchecked(other)

    def _jaccard_unchecked(self, other: "MinHashSignature") -> float:
        if self.set_size == 0 and other.set_size == 0:
            return 0.0
        return float(np.mean(self.values == other.values))

    def containment(self, other: "MinHashSignature") -> float:
        """Estimate containment of *this* set in ``other`` (|A∩B| / |A|)."""
        self._check_compatible(other)
        if self.set_size == 0:
            return 0.0
        j = self._jaccard_unchecked(other)
        estimate = j * (self.set_size + other.set_size) / ((1.0 + j) * self.set_size)
        return float(min(1.0, max(0.0, estimate)))

    def band_hashes(self, num_bands: int) -> list[int]:
        """Hash the signature into ``num_bands`` band buckets (for LSH)."""
        if self.num_hashes % num_bands != 0:
            raise ValueError(
                f"num_hashes ({self.num_hashes}) not divisible by bands ({num_bands})"
            )
        rows = self.num_hashes // num_bands
        out = []
        for band in range(num_bands):
            chunk = self.values[band * rows : (band + 1) * rows]
            out.append(stable_hash_64(chunk.tobytes(), seed=band))
        return out

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, MinHashSignature)
            and self.num_hashes == other.num_hashes
            and self.seed == other.seed
            and bool(np.all(self.values == other.values))
        )

    def __repr__(self) -> str:
        return f"MinHashSignature(k={self.num_hashes}, |S|={self.set_size})"
