"""LSH Ensemble: containment search over skewed set-size distributions.

Reimplementation of the index of Zhu, Nargesian, Pu, Miller (VLDB 2016),
which CMDL uses for its syntactic labeling function and joinability sketches
(paper §3). Plain minhash-LSH targets Jaccard *similarity*; containment
queries against sets of wildly different sizes need the ensemble trick:

1. Partition indexed sets into partitions by set size.
2. Within a partition, containment c maps to Jaccard j = c / (|Q|/|X| + 1 - c)
   using a representative partition size |X|; each partition therefore gets
   its own banding tuned at query time.

Our implementation keeps the partition structure and per-partition banded
indexes, and re-ranks candidates by exact signature-based containment, which
is the behaviour downstream CMDL components depend on (top-k containment
matches with scores).
"""

from __future__ import annotations

import bisect

from repro.sketch.lsh import LSHIndex
from repro.sketch.minhash import MinHashSignature, band_hashes_batch


class LSHEnsemble:
    """Containment-search index partitioned by indexed-set size."""

    #: Partitions at or below this size are fully scanned instead of banded:
    #: banding cannot prune meaningfully there, and the scan restores perfect
    #: recall on small lakes (the regime of the parity tests).
    SCAN_LIMIT = 50

    #: Churn fractions (relative to current size) past which an incremental
    #: ensemble repartitions. Inserts land in the nearest size partition —
    #: correct (the re-rank is exact) but balance drifts, so both kinds of
    #: churn trigger a lazy rebuild rather than rebuilding on every mutation.
    REBUILD_DELETED_FRACTION = 0.25
    REBUILD_INSERTED_FRACTION = 0.5

    def __init__(self, num_partitions: int = 8, num_bands: int = 16):
        if num_partitions <= 0:
            raise ValueError(f"num_partitions must be positive, got {num_partitions}")
        self.num_partitions = num_partitions
        self.num_bands = num_bands
        self._pending: list[tuple[str, MinHashSignature]] = []
        self._pending_keys: set[str] = set()
        self._partitions: list[LSHIndex] = []
        self._partition_upper: list[int] = []
        self._built = False
        self._inserted_since_build = 0
        self._deleted_since_build = 0
        self._built_size = 0

    # -------------------------------------------------------------- build

    def add(self, key: str, signature: MinHashSignature) -> None:
        """Stage an entry. Call :meth:`build` after all entries are added."""
        if self._built:
            raise RuntimeError("LSHEnsemble is already built; create a new index to add")
        self._pending.append((key, signature))
        self._pending_keys.add(key)

    def build_bulk(
        self, entries: list[tuple[str, MinHashSignature]]
    ) -> "LSHEnsemble":
        """Stage a whole ``(key, signature)`` batch and build in one step.

        Partition layout is identical to per-item :meth:`add` calls followed
        by :meth:`build` (the build sorts staged entries by set size either
        way); this is the one-shot construction path of the index catalog.
        """
        if self._built:
            raise RuntimeError("LSHEnsemble is already built; create a new index to add")
        self._pending.extend(entries)
        self._pending_keys.update(key for key, _ in entries)
        return self.build()

    # ---------------------------------------------------------- mutation

    def __contains__(self, key: str) -> bool:
        if self._built:
            return any(key in p for p in self._partitions)
        return key in self._pending_keys

    def insert(self, key: str, signature: MinHashSignature) -> None:
        """Add one entry to the ensemble (delta path).

        On a built ensemble the entry lands in the partition whose size
        range it matches today; partition balance drifts with churn, so the
        ensemble repartitions itself once inserts exceed
        :attr:`REBUILD_INSERTED_FRACTION` of its size. Before :meth:`build`
        this is :meth:`add` plus the duplicate check.
        """
        if key in self:
            raise ValueError(f"duplicate ensemble key {key!r}")
        if not self._built:
            self.add(key, signature)
            return
        self._partitions[self.partition_of(signature.set_size)].add(key, signature)
        self._inserted_since_build += 1
        self._maybe_rebuild()

    def delete(self, key: str) -> None:
        """Remove one entry (delta path); repartitions past the churn bar."""
        if not self._built:
            for i, (k, _) in enumerate(self._pending):
                if k == key:
                    del self._pending[i]
                    self._pending_keys.discard(key)
                    return
            raise KeyError(f"no ensemble entry for key {key!r}")
        for partition in self._partitions:
            if key in partition:
                partition.remove(key)
                self._deleted_since_build += 1
                self._maybe_rebuild()
                return
        raise KeyError(f"no ensemble entry for key {key!r}")

    def _maybe_rebuild(self) -> None:
        base = max(self._built_size, 1)
        if (
            self._deleted_since_build > self.REBUILD_DELETED_FRACTION * base
            or self._inserted_since_build > self.REBUILD_INSERTED_FRACTION * base
        ):
            self.rebuild()

    def rebuild(self) -> "LSHEnsemble":
        """Repartition all live entries from scratch (eager form of the lazy
        rebuild the mutation paths schedule)."""
        if not self._built:
            return self.build()
        for partition in self._partitions:
            self._pending.extend(partition.items())
        self._pending_keys = {k for k, _ in self._pending}
        self._partitions = []
        self._partition_upper = []
        self._built = False
        self._inserted_since_build = 0
        self._deleted_since_build = 0
        return self.build()

    def build(self) -> "LSHEnsemble":
        """Partition staged entries by set size and build per-partition LSH.

        Band hashes for *all* staged signatures come from one
        :func:`~repro.sketch.minhash.band_hashes_batch` kernel call over the
        sorted slab; each partition then ingests its row slice columnar via
        :meth:`LSHIndex.build_bulk` instead of per-key ``add`` calls.
        """
        if self._built:
            return self
        self._pending.sort(key=lambda kv: (kv[1].set_size, kv[0]))
        n = len(self._pending)
        band_matrix = band_hashes_batch(
            [sig for _, sig in self._pending], self.num_bands
        )
        num_parts = min(self.num_partitions, max(1, n))
        base, extra = divmod(n, num_parts) if n else (0, 0)
        self._partitions = []
        self._partition_upper = []
        start = 0
        for p in range(num_parts):
            size = base + (1 if p < extra else 0)
            chunk = self._pending[start : start + size]
            index = LSHIndex(num_bands=self.num_bands)
            index.build_bulk(chunk, band_matrix=band_matrix[start : start + size])
            start += size
            self._partitions.append(index)
            self._partition_upper.append(chunk[-1][1].set_size if chunk else 0)
        self._pending = []
        self._pending_keys = set()
        self._built = True
        self._inserted_since_build = 0
        self._deleted_since_build = 0
        self._built_size = n
        return self

    def __len__(self) -> int:
        if self._built:
            return sum(len(p) for p in self._partitions)
        return len(self._pending)

    @property
    def prunes(self) -> bool:
        """True when at least one partition is large enough for banding to
        beat a full scan — i.e. :meth:`candidate_keys` actually prunes.

        Answerable without building: partition sizes are determined by the
        entry count alone, so reading this never mutates index state.
        """
        if self._built:
            return any(len(p) > self.SCAN_LIMIT for p in self._partitions)
        n = len(self._pending)
        num_parts = min(self.num_partitions, max(1, n))
        largest = -(-n // num_parts)  # ceil division
        return largest > self.SCAN_LIMIT

    # -------------------------------------------------------- persistence

    def persistent_state(self) -> dict:
        """Exact structural state: partition layout and churn counters are
        preserved verbatim so a restored ensemble repartitions at the same
        future mutation the live one would."""
        return {
            "num_partitions": self.num_partitions,
            "num_bands": self.num_bands,
            "pending": [
                (key, signature.persistent_state())
                for key, signature in self._pending
            ],
            "partitions": [p.persistent_state() for p in self._partitions],
            "partition_upper": list(self._partition_upper),
            "built": self._built,
            "inserted_since_build": self._inserted_since_build,
            "deleted_since_build": self._deleted_since_build,
            "built_size": self._built_size,
        }

    @classmethod
    def restore_state(cls, state: dict) -> "LSHEnsemble":
        ensemble = cls(
            num_partitions=state["num_partitions"], num_bands=state["num_bands"]
        )
        ensemble._pending = [
            (key, MinHashSignature.restore_state(s)) for key, s in state["pending"]
        ]
        ensemble._pending_keys = {key for key, _ in ensemble._pending}
        ensemble._partitions = [
            LSHIndex.restore_state(p) for p in state["partitions"]
        ]
        ensemble._partition_upper = list(state["partition_upper"])
        ensemble._built = state["built"]
        ensemble._inserted_since_build = state["inserted_since_build"]
        ensemble._deleted_since_build = state["deleted_since_build"]
        ensemble._built_size = state["built_size"]
        return ensemble

    # -------------------------------------------------------------- query

    def query(
        self,
        signature: MinHashSignature,
        k: int = 10,
        threshold: float = 0.0,
        exclude: set[str] | None = None,
    ) -> list[tuple[str, float]]:
        """Top-k keys by estimated containment of the *query* in each entry.

        Every partition is probed (each contributes band-collision candidates
        re-ranked by exact signature containment); results below ``threshold``
        are dropped. Returned scores are containment estimates in [0, 1].
        """
        if not self._built:
            self.build()
        exclude = exclude or set()
        best: dict[str, float] = {}
        for index, candidates in zip(
            self._partitions, self._partition_candidates(signature)
        ):
            for key in candidates:
                if key in exclude:
                    continue
                c = signature.containment(index.signature_of(key))
                if c >= threshold and (key not in best or c > best[key]):
                    best[key] = c
        ranked = sorted(best.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]

    def candidate_keys(
        self, signature: MinHashSignature, exclude: set[str] | None = None
    ) -> set[str]:
        """Raw candidate set for a query signature, with no top-k cut.

        Band-collision candidates from every partition, plus full scans of
        partitions at or below :attr:`SCAN_LIMIT` entries; falls back to all
        keys when banding finds nothing anywhere (totality). This is the
        entry point for the candidate-generation layer, which re-ranks with
        exact scores downstream and therefore must not lose entries whose
        containment is directional (small set inside a large query).
        """
        if not self._built:
            self.build()
        exclude = exclude or set()
        found: set[str] = set()
        for candidates in self._partition_candidates(signature):
            found.update(candidates)
        return found - exclude

    def _partition_candidates(self, signature: MinHashSignature) -> list[set[str]]:
        """Candidate set of each partition, computed exactly once per probe.

        Partitions at or below :attr:`SCAN_LIMIT` contribute all their keys
        (banding cannot prune there), larger ones their band collisions.
        When banding yields nothing anywhere the partitions' full key sets
        are returned instead (totality) — :meth:`query` and
        :meth:`candidate_keys` both consume this single pass, so neither
        re-derives collisions nor re-iterates partitions in a fallback
        path. (A probe whose candidates all score below ``query``'s
        threshold returns empty without a rescan: a full scan could only
        re-find the same below-threshold entries.)
        """
        per_partition = [
            set(index.keys()) if len(index) <= self.SCAN_LIMIT
            else index.candidates(signature)
            for index in self._partitions
        ]
        if not any(per_partition):
            per_partition = [set(index.keys()) for index in self._partitions]
        return per_partition

    def partition_of(self, set_size: int) -> int:
        """Index of the partition an entry of ``set_size`` would land in."""
        if not self._built:
            raise RuntimeError("build() the ensemble first")
        return min(
            bisect.bisect_left(self._partition_upper, set_size),
            len(self._partitions) - 1,
        )
