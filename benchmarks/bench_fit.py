"""Cold-fit benchmark: the batched fit pipeline vs its per-item baselines.

Three fits of the same lake are timed, coldest path first:

* **pre-PR reference** — the fit as it was before the vectorised pipeline:
  per-item profiling (``fit_mode="legacy"``) with the pre-PR subword
  embedder (one seeded RNG stream constructed per gram occurrence, no gram
  or bucket caching). This re-measures the pre-PR cost on today's machine;
  where the reference reuses code this PR also sped up (PPMI training, the
  pipeline memo), the reference gets the benefit, so its number — and every
  speedup quoted against it — is *conservative*.
* **legacy path** — the current per-item delta routines driven over the
  whole lake (``CMDLConfig.fit_mode="legacy"``), sharing the new embedder:
  the apples-to-apples batch-vs-per-item comparison.
* **batched path** — the default batch-first fit: shared fingerprint cache,
  one ``signatures_batch`` pass, union-vocabulary embedding, bulk index
  builds.

The recorded pre-PR baseline is also reported: benchmarks/results.txt holds
four cold ``CMDL.fit`` measurements on Pharma-1B from the PR-3 benchmark
runs (2646.7 / 2889.3 / 2973.2 / 3181.2 ms), taken under the CI conditions
the fit-pipeline issue was calibrated against.

Both Pharma-1B and a ~10x lake (Pharma-1B tables expanded by
``lakes/synthesis.derive_unionable_tables``) are measured; the gap widens
with scale because the batched stages amortise vocabulary work that the
per-item paths pay per DE. Appends to results.txt and emits BENCH_fit.json.

Run:  PYTHONPATH=src python benchmarks/bench_fit.py

Intentionally NOT named ``test_*``: byte-parity of the two fit modes is
asserted in tests/core/test_fit_batch_parity.py; this file is the latency
sweep.
"""

from __future__ import annotations

import gc
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.srql import Q
from repro.core.system import CMDL, CMDLConfig
from repro.embed.blended import BlendedEmbedder
from repro.embed.hashing_embedder import HashingEmbedder
from repro.embed.ppmi import PPMIEmbedder
from repro.eval.benchmarks import build_benchmark
from repro.eval.reporting import format_table
from repro.lakes.pharma import PharmaLakeConfig, generate_pharma_lake
from repro.lakes.synthesis import derive_unionable_tables
from repro.relational.catalog import DataLake
from repro.text.tokenizer import tokenize
from repro.utils.hashing import stable_hash_64

RESULTS_PATH = Path(__file__).parent / "results.txt"
JSON_PATH = Path(__file__).parent / "BENCH_fit.json"

#: Cold ``CMDL.fit`` on Pharma-1B as recorded by bench_incremental.py before
#: this PR (benchmarks/results.txt, four runs) — the recorded pre-PR
#: baseline the fit-pipeline issue cites.
RECORDED_PREPR_MS = (2646.7, 2889.3, 2973.2, 3181.2)

#: Hard floors asserted at the end (see report for the measured values).
MIN_SPEEDUP_VS_RECORDED = 5.0
MIN_SPEEDUP_VS_REFERENCE = 2.5


class _PrePRSubwordEmbedder(HashingEmbedder):
    """The pre-PR bucket table, verbatim: one ``np.random.default_rng``
    stream per gram *occurrence* (word cache only — no gram->bucket or
    bucket->vector reuse), which is what made the pre-PR fit embedding-bound.
    """

    def embed_word(self, word: str) -> np.ndarray:
        word = word.lower()
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        grams = self._ngrams(word)
        vec = np.zeros(self.dim)
        for gram in grams:
            bucket = stable_hash_64(gram, self.seed) % self.num_buckets
            rng = np.random.default_rng(bucket ^ (self.seed << 32))
            vec += rng.standard_normal(self.dim)
        vec /= len(grams)
        norm = np.linalg.norm(vec)
        if norm > 0:
            vec = vec / norm
        self._cache[word] = vec
        return vec

    def embed_words(self, words: list[str]) -> np.ndarray:
        if not words:
            return np.zeros((0, self.dim))
        return np.vstack([self.embed_word(w) for w in words])


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def _prepr_reference_fit(lake: DataLake) -> tuple[float, CMDL]:
    """Time the pre-PR-equivalent cold fit (embedder training included)."""

    def run() -> CMDL:
        corpora = [tokenize(d.text) for d in lake.documents]
        for table in lake.tables:
            for row in table.rows():
                corpora.append([t for cell in row for t in tokenize(cell)])
        embedder = BlendedEmbedder(
            dim=100,
            subword=_PrePRSubwordEmbedder(dim=100, seed=0),
            distributional=PPMIEmbedder(dim=100, seed=0).fit(corpora),
            seed=0,
        )
        cmdl = CMDL(CMDLConfig(use_joint=False, embedder=embedder,
                               fit_mode="legacy"))
        cmdl.fit(lake)
        return cmdl

    return _timed(run)


def _best_fit(lake: DataLake, mode: str, repeats: int = 3):
    """Best-of-N cold fit wall time for one fit_mode (fresh CMDL each)."""
    best, best_cmdl = None, None
    for _ in range(repeats):
        seconds, cmdl = _timed(
            lambda: _fit_once(lake, mode)
        )
        if best is None or seconds < best:
            best, best_cmdl = seconds, cmdl
        else:
            del cmdl
    gc.collect()
    return best, best_cmdl


def _fit_once(lake: DataLake, mode: str) -> CMDL:
    cmdl = CMDL(CMDLConfig(use_joint=False, fit_mode=mode))
    cmdl.fit(lake)
    return cmdl


def _scaled_lake(base: DataLake, derived_per_base: int = 9) -> DataLake:
    """Pharma-1B expanded ~10x in tables/columns via projection/selection."""
    derived, _ = derive_unionable_tables(
        base.tables, derived_per_base=derived_per_base, seed=7,
        name_prefix="scale",
    )
    lake = DataLake(name=f"{base.name}-x{derived_per_base + 1}")
    for table in base.tables:
        lake.add_table(table)
    for table in derived:
        lake.add_table(table)
    for document in base.documents:
        lake.add_document(document)
    return lake


def _bench_lake(name: str, lake: DataLake, reference_repeats: int = 2) -> dict:
    print(f"\n== {name}: {lake.num_tables} tables / {lake.num_columns} "
          f"columns / {lake.num_documents} documents ==")
    # This host shows minutes-long slow windows (shared tenancy), so each
    # path takes the min over several samples, and the batched samples are
    # split across the start and end of the sweep so every path sees the
    # same conditions rather than the tail of the run.
    batched_s, batched = _best_fit(lake, "batched", repeats=3)
    reference_s = None
    for _ in range(reference_repeats):
        seconds, cmdl = _prepr_reference_fit(lake)
        reference_s = seconds if reference_s is None else min(reference_s, seconds)
        del cmdl
        gc.collect()
    legacy_s, legacy = _best_fit(lake, "legacy", repeats=3)
    batched_tail_s, batched_tail = _best_fit(lake, "batched", repeats=2)
    if batched_tail_s < batched_s:
        batched_s, batched = batched_tail_s, batched_tail
    else:
        del batched_tail
    gc.collect()

    # Value-operator parity between the two live fit modes (spot check; the
    # byte-level contract lives in the parity test suite).
    workload = []
    for table in sorted(batched.profile.table_columns)[:8]:
        workload += [Q.joinable(table, top_n=3), Q.pkfk(table, top_n=3)]
    mismatches = sum(
        batched.engine.discover(q).items != legacy.engine.discover(q).items
        for q in workload
    )

    return {
        "lake": {"tables": lake.num_tables, "columns": lake.num_columns,
                 "documents": lake.num_documents},
        "prepr_reference_ms": round(1000 * reference_s, 1),
        "legacy_ms": round(1000 * legacy_s, 1),
        "batched_ms": round(1000 * batched_s, 1),
        "speedup_vs_reference": round(reference_s / batched_s, 2),
        "speedup_vs_legacy": round(legacy_s / batched_s, 2),
        "fit_stats_batched_ms": {
            k.removesuffix("_seconds"): round(1000 * v, 1)
            for k, v in batched.fit_stats.as_dict().items()
        },
        "index_breakdown_ms": {
            k: round(1000 * v, 1)
            for k, v in batched.fit_stats.index_breakdown.items()
        },
        "parity": f"{len(workload) - mismatches}/{len(workload)}",
        "_mismatches": mismatches,
    }


def smoke() -> None:
    """Kernel-parity assertions only: no timing gates, no file writes.

    Run in CI (``python benchmarks/bench_fit.py --smoke``) so a columnar
    kernel that drifts from its per-item oracle fails fast there, not in a
    full bench run. Covers the three kernels of the fit hot path:

    * band hashes — ``band_hashes_batch`` vs per-signature ``band_hashes``;
    * RP forests — array-backed vs ``_Node`` builder query results;
    * the two fit modes — batched vs legacy value-operator results, plus
      identical index breakdown groups.
    """
    from repro.ann.rpforest import RPForestIndex
    from repro.sketch.minhash import MinHash, band_hashes_batch

    lake = generate_pharma_lake(PharmaLakeConfig(
        num_drugs=30, num_enzymes=15, num_documents=30, noise_documents=5,
        interactions_rows=40, targets_rows=30, chembl_compounds=30,
        chebi_compounds=18, union_derived_per_base=1, seed=0,
    )).lake

    rng = np.random.default_rng(11)
    minhash = MinHash(num_hashes=64, seed=3)
    signatures = [
        minhash.signature({f"v{rng.integers(500)}" for _ in range(30)})
        for _ in range(40)
    ]
    matrix = band_hashes_batch(signatures, num_bands=16)
    assert [
        [int(h) for h in row] for row in matrix
    ] == [s.band_hashes(16) for s in signatures], "band kernel diverged"

    points = rng.standard_normal((300, 24))
    entries = [(f"p{i}", v) for i, v in enumerate(points)]
    array_forest = RPForestIndex(dim=24, seed=5).build_bulk(entries)
    node_forest = RPForestIndex(dim=24, seed=5, backend="nodes").build_bulk(entries)
    for i in range(0, 300, 30):
        assert array_forest.query(points[i], k=10) == node_forest.query(
            points[i], k=10
        ), "forest backends diverged"

    batched = _fit_once(lake, "batched")
    legacy = _fit_once(lake, "legacy")
    workload = []
    for table in sorted(batched.profile.table_columns)[:6]:
        workload += [Q.joinable(table, top_n=3), Q.pkfk(table, top_n=3)]
    mismatches = sum(
        batched.engine.discover(q).items != legacy.engine.discover(q).items
        for q in workload
    )
    assert mismatches == 0, f"{mismatches}/{len(workload)} operator mismatches"
    assert set(batched.fit_stats.index_breakdown) == set(
        legacy.fit_stats.index_breakdown
    ), "fit modes disagree on index breakdown groups"
    print(f"smoke OK: band kernel, forest backends, "
          f"{len(workload)}/{len(workload)} operator parity")


def main() -> None:
    # Warm the interpreter (numpy/scipy code paths, allocator) on a small
    # lake so no measured fit pays one-time process costs.
    warmup = generate_pharma_lake(PharmaLakeConfig(
        num_drugs=30, num_enzymes=15, num_documents=30, noise_documents=5,
        interactions_rows=40, targets_rows=30, chembl_compounds=30,
        chebi_compounds=18, union_derived_per_base=1, seed=0,
    )).lake
    _fit_once(warmup, "batched")
    _prepr_reference_fit(warmup)

    pharma = build_benchmark("1B").lake
    results = {
        "pharma_1b": _bench_lake("Pharma-1B", pharma),
        "pharma_10x": _bench_lake("Pharma-1B x10", _scaled_lake(pharma),
                                  reference_repeats=1),
    }
    recorded_mean_ms = sum(RECORDED_PREPR_MS) / len(RECORDED_PREPR_MS)
    one_b = results["pharma_1b"]
    one_b["recorded_prepr_ms"] = RECORDED_PREPR_MS
    one_b["speedup_vs_recorded"] = round(
        recorded_mean_ms / one_b["batched_ms"], 2
    )

    rows = []
    for key, label in (("pharma_1b", "Pharma-1B"), ("pharma_10x", "x10 scaled")):
        r = results[key]
        rows.append([
            label,
            r["prepr_reference_ms"],
            r["legacy_ms"],
            r["batched_ms"],
            f"{r['speedup_vs_reference']:.1f}x",
            f"{r['speedup_vs_legacy']:.1f}x",
        ])
    report = format_table(
        ["Lake", "pre-PR ref (ms)", "legacy (ms)", "batched (ms)",
         "vs pre-PR", "vs legacy"],
        rows,
        title="Cold CMDL.fit: batched pipeline vs per-item baselines",
    )
    report += (
        f"\n  recorded pre-PR baseline (results.txt, bench_incremental cold fits):"
        f" {recorded_mean_ms:.0f} ms mean of {sorted(RECORDED_PREPR_MS)}"
        f"\n  batched vs recorded pre-PR baseline: "
        f"{one_b['speedup_vs_recorded']:.1f}x"
        f" ({one_b['batched_ms']:.0f} ms vs {recorded_mean_ms:.0f} ms)"
        f"\n  pre-PR reference re-measured on this host (conservative: shares"
        f" this PR's PPMI/pipeline speedups): {one_b['prepr_reference_ms']:.0f} ms"
    )
    for key, label in (("pharma_1b", "Pharma-1B"), ("pharma_10x", "x10 scaled")):
        stats = results[key]["fit_stats_batched_ms"]
        breakdown = " ".join(f"{k}={v:.0f}ms" for k, v in stats.items())
        report += f"\n  FitStats ({label}, batched): {breakdown}"
        structures = " ".join(
            f"{k}={v:.0f}ms"
            for k, v in results[key]["index_breakdown_ms"].items()
        )
        report += f"\n  index stage by structure ({label}): {structures}"
        report += f"\n  value-operator parity batched vs legacy ({label}): " \
                  f"{results[key]['parity']} identical"
    print("\n" + report)
    with RESULTS_PATH.open("a") as fh:
        fh.write(report + "\n\n")

    mismatch_total = sum(r.pop("_mismatches") for r in results.values())
    with JSON_PATH.open("w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")

    assert mismatch_total == 0, "batched fit diverged from the legacy path"
    # The per-item path shares the vectorised substrate this PR built
    # (bucket table, fingerprint cache, memos), so at seed scale the two
    # fit modes land within host noise of each other — the batched path
    # must merely never be meaningfully slower.
    assert one_b["batched_ms"] <= 1.25 * one_b["legacy_ms"], (
        "batched fit fell well behind the per-item path: "
        f"{one_b['batched_ms']:.0f} ms vs {one_b['legacy_ms']:.0f} ms"
    )
    # The recorded baseline was measured on this repo's benchmark host; on
    # clearly slower hardware (reference fit slower than the recorded mean)
    # the cross-run ratio is meaningless, so the gate only applies when the
    # host is at least as fast as the recording conditions.
    if one_b["prepr_reference_ms"] <= recorded_mean_ms:
        assert one_b["speedup_vs_recorded"] >= MIN_SPEEDUP_VS_RECORDED, (
            f"batched cold fit must be >= {MIN_SPEEDUP_VS_RECORDED}x faster "
            f"than the recorded pre-PR baseline ({recorded_mean_ms:.0f} ms), "
            f"got {one_b['speedup_vs_recorded']:.1f}x"
        )
    else:
        print("  [recorded-baseline gate skipped: this host is slower than "
              "the conditions the pre-PR baseline was recorded under]")
    assert one_b["speedup_vs_reference"] >= MIN_SPEEDUP_VS_REFERENCE, (
        f"batched cold fit must be >= {MIN_SPEEDUP_VS_REFERENCE}x faster than "
        f"the re-measured pre-PR reference, got "
        f"{one_b['speedup_vs_reference']:.1f}x"
    )


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        smoke()
    else:
        main()
