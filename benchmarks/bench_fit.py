"""Cold-fit benchmark: the batched fit pipeline vs its per-item baselines.

Three fits of the same lake are timed, coldest path first:

* **pre-PR reference** — the fit as it was before the vectorised pipeline:
  per-item profiling (``fit_mode="legacy"``) with the pre-PR subword
  embedder (one seeded RNG stream constructed per gram occurrence, no gram
  or bucket caching). This re-measures the pre-PR cost on today's machine;
  where the reference reuses code this PR also sped up (PPMI training, the
  pipeline memo), the reference gets the benefit, so its number — and every
  speedup quoted against it — is *conservative*.
* **legacy path** — the current per-item delta routines driven over the
  whole lake (``CMDLConfig.fit_mode="legacy"``), sharing the new embedder:
  the apples-to-apples batch-vs-per-item comparison.
* **batched path** — the default batch-first fit: shared fingerprint cache,
  one ``signatures_batch`` pass, union-vocabulary embedding, bulk index
  builds.

The recorded pre-PR baseline is also reported: benchmarks/results.txt holds
four cold ``CMDL.fit`` measurements on Pharma-1B from the PR-3 benchmark
runs (2646.7 / 2889.3 / 2973.2 / 3181.2 ms), taken under the CI conditions
the fit-pipeline issue was calibrated against.

Both Pharma-1B and a ~10x lake (Pharma-1B tables expanded by
``lakes/synthesis.derive_unionable_tables``) are measured; the gap widens
with scale because the batched stages amortise vocabulary work that the
per-item paths pay per DE. Appends to results.txt and emits BENCH_fit.json.

Run:  PYTHONPATH=src python benchmarks/bench_fit.py

Intentionally NOT named ``test_*``: byte-parity of the two fit modes is
asserted in tests/core/test_fit_batch_parity.py; this file is the latency
sweep.
"""

from __future__ import annotations

import gc
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.srql import Q
from repro.core.system import CMDL, CMDLConfig
from repro.embed.blended import BlendedEmbedder
from repro.embed.hashing_embedder import HashingEmbedder
from repro.embed.ppmi import PPMIEmbedder
from repro.eval.benchmarks import build_benchmark
from repro.eval.reporting import format_table
from repro.lakes.pharma import PharmaLakeConfig, generate_pharma_lake
from repro.lakes.synthesis import derive_unionable_tables
from repro.relational.catalog import DataLake
from repro.text.tokenizer import tokenize
from repro.utils.hashing import stable_hash_64

RESULTS_PATH = Path(__file__).parent / "results.txt"
JSON_PATH = Path(__file__).parent / "BENCH_fit.json"

#: Cold ``CMDL.fit`` on Pharma-1B as recorded by bench_incremental.py before
#: this PR (benchmarks/results.txt, four runs) — the recorded pre-PR
#: baseline the fit-pipeline issue cites.
RECORDED_PREPR_MS = (2646.7, 2889.3, 2973.2, 3181.2)

#: Hard floors asserted at the end (see report for the measured values).
MIN_SPEEDUP_VS_RECORDED = 5.0
MIN_SPEEDUP_VS_REFERENCE = 2.5

#: Per-stage 10x-lake baselines recorded by the PR-6 bench run
#: (BENCH_fit.json before the columnar embed kernels) and the stage
#: ceilings gated against them: embed >= 2x faster, keyword >= 1.5x.
#: Both gates use the per-stage minimum across the batched cold fits and
#: the same host-speed guard as the recorded-baseline gate.
RECORDED_10X_EMBED_MS = 608.4
RECORDED_10X_KEYWORD_MS = 122.5
MAX_10X_EMBED_MS = 300.0
MAX_10X_KEYWORD_MS = 80.0


class _PrePRSubwordEmbedder(HashingEmbedder):
    """The pre-PR bucket table, verbatim: one ``np.random.default_rng``
    stream per gram *occurrence* (word cache only — no gram->bucket or
    bucket->vector reuse), which is what made the pre-PR fit embedding-bound.
    """

    def embed_word(self, word: str) -> np.ndarray:
        word = word.lower()
        cached = self._cache.get(word)
        if cached is not None:
            return cached
        grams = self._ngrams(word)
        vec = np.zeros(self.dim)
        for gram in grams:
            bucket = stable_hash_64(gram, self.seed) % self.num_buckets
            rng = np.random.default_rng(bucket ^ (self.seed << 32))
            vec += rng.standard_normal(self.dim)
        vec /= len(grams)
        norm = np.linalg.norm(vec)
        if norm > 0:
            vec = vec / norm
        self._cache[word] = vec
        return vec

    def embed_words(self, words: list[str]) -> np.ndarray:
        if not words:
            return np.zeros((0, self.dim))
        return np.vstack([self.embed_word(w) for w in words])


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def _prepr_reference_fit(lake: DataLake) -> tuple[float, CMDL]:
    """Time the pre-PR-equivalent cold fit (embedder training included)."""

    def run() -> CMDL:
        corpora = [tokenize(d.text) for d in lake.documents]
        for table in lake.tables:
            for row in table.rows():
                corpora.append([t for cell in row for t in tokenize(cell)])
        embedder = BlendedEmbedder(
            dim=100,
            subword=_PrePRSubwordEmbedder(dim=100, seed=0),
            distributional=PPMIEmbedder(dim=100, seed=0).fit(corpora),
            seed=0,
        )
        cmdl = CMDL(CMDLConfig(use_joint=False, embedder=embedder,
                               fit_mode="legacy"))
        cmdl.fit(lake)
        return cmdl

    return _timed(run)


def _best_fit(lake: DataLake, mode: str, repeats: int = 3, **config):
    """Best-of-N cold fit for one fit_mode (fresh CMDL each).

    Returns the best wall time, that fit's CMDL, and *every* rep's
    FitStats — the caller aggregates per-stage minima across reps.
    """
    best, best_cmdl, all_stats = None, None, []
    for _ in range(repeats):
        seconds, cmdl = _timed(
            lambda: _fit_once(lake, mode, **config)
        )
        all_stats.append(cmdl.fit_stats)
        if best is None or seconds < best:
            best, best_cmdl = seconds, cmdl
        else:
            del cmdl
    gc.collect()
    return best, best_cmdl, all_stats


def _fit_once(lake: DataLake, mode: str, **config) -> CMDL:
    cmdl = CMDL(CMDLConfig(use_joint=False, fit_mode=mode, **config))
    cmdl.fit(lake)
    return cmdl


def _stage_minima_ms(all_stats) -> dict[str, float]:
    """Per-stage minima (ms) across cold-fit reps.

    This host has minutes-long slow windows (shared tenancy), and a single
    rep's total can hide another rep's clean stage — so each stage is
    minimised *independently* across reps. The minima therefore need not
    sum to any one rep's total; they are the honest per-stage floor.
    """
    minima: dict[str, float] = {}
    for stats in all_stats:
        for key, seconds in stats.as_dict().items():
            stage = key.removesuffix("_seconds")
            value = round(1000 * seconds, 1)
            if stage not in minima or value < minima[stage]:
                minima[stage] = value
    return minima


def _breakdown_minima_ms(all_stats, attr: str) -> dict[str, float]:
    """Per-entry minima (ms) of one FitStats breakdown dict across reps."""
    minima: dict[str, float] = {}
    for stats in all_stats:
        for key, seconds in getattr(stats, attr).items():
            value = round(1000 * seconds, 1)
            if key not in minima or value < minima[key]:
                minima[key] = value
    return minima


def _best_embed_breakdown_ms(all_stats) -> dict[str, float]:
    """``embed_breakdown`` (ms) of the rep with the minimal embed stage —
    one coherent rep, so the kernel sub-stages are attributable to the
    reported embed minimum (unlike the independently-minimised stages)."""
    best = min(all_stats, key=lambda s: s.embed_seconds)
    return {k: round(1000 * v, 1) for k, v in best.embed_breakdown.items()}


def _scaled_lake(base: DataLake, derived_per_base: int = 9) -> DataLake:
    """Pharma-1B expanded ~10x in tables/columns via projection/selection."""
    derived, _ = derive_unionable_tables(
        base.tables, derived_per_base=derived_per_base, seed=7,
        name_prefix="scale",
    )
    lake = DataLake(name=f"{base.name}-x{derived_per_base + 1}")
    for table in base.tables:
        lake.add_table(table)
    for table in derived:
        lake.add_table(table)
    for document in base.documents:
        lake.add_document(document)
    return lake


def _bench_lake(
    name: str, lake: DataLake, reference_repeats: int = 2,
    process_leg: bool = False,
) -> dict:
    print(f"\n== {name}: {lake.num_tables} tables / {lake.num_columns} "
          f"columns / {lake.num_documents} documents ==")
    # This host shows minutes-long slow windows (shared tenancy), so each
    # path takes the min over several samples, and the batched samples are
    # split across the start and end of the sweep so every path sees the
    # same conditions rather than the tail of the run.
    batched_s, batched, batched_stats = _best_fit(lake, "batched", repeats=3)
    reference_s = None
    for _ in range(reference_repeats):
        seconds, cmdl = _prepr_reference_fit(lake)
        reference_s = seconds if reference_s is None else min(reference_s, seconds)
        del cmdl
        gc.collect()
    legacy_s, legacy, _ = _best_fit(lake, "legacy", repeats=3)
    batched_tail_s, batched_tail, tail_stats = _best_fit(
        lake, "batched", repeats=2
    )
    batched_stats += tail_stats
    if batched_tail_s < batched_s:
        batched_s, batched = batched_tail_s, batched_tail
    else:
        del batched_tail
    gc.collect()

    # Value-operator parity between the two live fit modes (spot check; the
    # byte-level contract lives in the parity test suite).
    workload = []
    for table in sorted(batched.profile.table_columns)[:8]:
        workload += [Q.joinable(table, top_n=3), Q.pkfk(table, top_n=3)]
    mismatches = sum(
        batched.engine.discover(q).items != legacy.engine.discover(q).items
        for q in workload
    )

    result = {
        "lake": {"tables": lake.num_tables, "columns": lake.num_columns,
                 "documents": lake.num_documents},
        "prepr_reference_ms": round(1000 * reference_s, 1),
        "legacy_ms": round(1000 * legacy_s, 1),
        "batched_ms": round(1000 * batched_s, 1),
        "speedup_vs_reference": round(reference_s / batched_s, 2),
        "speedup_vs_legacy": round(legacy_s / batched_s, 2),
        # Per-stage minima across all batched reps (see _stage_minima_ms:
        # stages are minimised independently, so they need not sum to the
        # best total) plus per-structure / per-kernel splits.
        "fit_stats_batched_ms": _stage_minima_ms(batched_stats),
        "index_breakdown_ms": _breakdown_minima_ms(
            batched_stats, "index_breakdown"
        ),
        "embed_breakdown_ms": _best_embed_breakdown_ms(batched_stats),
        "fit_warnings": sorted(
            {note for stats in batched_stats for note in stats.warnings}
        ),
        "parity": f"{len(workload) - mismatches}/{len(workload)}",
        "_mismatches": mismatches,
    }

    if process_leg:
        # The process embed backend, labeled honestly: on a single-core
        # host the forked warm-up is attribution (work moves between
        # processes), not speedup — the leg is recorded for parity and for
        # multi-core hosts, and never gates on this host class.
        import os

        process_s, process, process_stats = _best_fit(
            lake, "batched", repeats=2,
            fit_workers=2, fit_embed_backend="process",
        )
        process_mismatches = sum(
            batched.engine.discover(q).items != process.engine.discover(q).items
            for q in workload
        )
        result["process_backend"] = {
            "fit_workers": 2,
            "batched_ms": round(1000 * process_s, 1),
            "fit_stats_ms": _stage_minima_ms(process_stats),
            "embed_breakdown_ms": _best_embed_breakdown_ms(process_stats),
            "warnings": sorted(
                {note for stats in process_stats for note in stats.warnings}
            ),
            "single_core_host": (os.cpu_count() or 1) <= 1,
            "parity": f"{len(workload) - process_mismatches}/{len(workload)}",
        }
        result["_mismatches"] += process_mismatches
        del process
        gc.collect()

    return result


def smoke() -> None:
    """Kernel-parity assertions only: no timing gates, no file writes.

    Run in CI (``python benchmarks/bench_fit.py --smoke``) so a columnar
    kernel that drifts from its per-item oracle fails fast there, not in a
    full bench run. Covers the kernels of the fit hot path:

    * band hashes — ``band_hashes_batch`` vs per-signature ``band_hashes``;
    * RP forests — array-backed vs ``_Node`` builder query results;
    * the embed slab kernel — batched ``embed_words`` vs per-word
      ``embed_word``, and the gram slab vs the ``_ngrams`` oracle;
    * columnar keyword postings — ``build_bulk`` vs per-item ``add``;
    * the two fit modes — batched vs legacy value-operator results, plus
      identical index breakdown groups;
    * the process embed backend — ``fit_workers=2`` solo embeddings
      byte-identical to the serial fit (a graceful thread fallback is
      tolerated and reported — the backend degrades, never diverges).
    """
    from repro.ann.rpforest import RPForestIndex
    from repro.search.inverted_index import InvertedIndex
    from repro.sketch.minhash import MinHash, band_hashes_batch

    lake = generate_pharma_lake(PharmaLakeConfig(
        num_drugs=30, num_enzymes=15, num_documents=30, noise_documents=5,
        interactions_rows=40, targets_rows=30, chembl_compounds=30,
        chebi_compounds=18, union_derived_per_base=1, seed=0,
    )).lake

    rng = np.random.default_rng(11)
    minhash = MinHash(num_hashes=64, seed=3)
    signatures = [
        minhash.signature({f"v{rng.integers(500)}" for _ in range(30)})
        for _ in range(40)
    ]
    matrix = band_hashes_batch(signatures, num_bands=16)
    assert [
        [int(h) for h in row] for row in matrix
    ] == [s.band_hashes(16) for s in signatures], "band kernel diverged"

    points = rng.standard_normal((300, 24))
    entries = [(f"p{i}", v) for i, v in enumerate(points)]
    array_forest = RPForestIndex(dim=24, seed=5).build_bulk(entries)
    node_forest = RPForestIndex(dim=24, seed=5, backend="nodes").build_bulk(entries)
    for i in range(0, 300, 30):
        assert array_forest.query(points[i], k=10) == node_forest.query(
            points[i], k=10
        ), "forest backends diverged"

    # Embed slab kernel vs the per-word oracle, on real lake vocabulary.
    vocab = sorted({t for d in lake.documents for t in tokenize(d.text)})[:400]
    slab_embedder = HashingEmbedder(dim=32, seed=0)
    counts, slab = slab_embedder._gram_slab(vocab)
    expected_grams = [slab_embedder._ngrams(w) for w in vocab]
    assert counts == [len(g) for g in expected_grams], "gram counts diverged"
    assert slab == [g for grams in expected_grams for g in grams], \
        "gram slab diverged from the _ngrams oracle"
    batch_vecs = slab_embedder.embed_words(vocab)
    oracle = HashingEmbedder(dim=32, seed=0)
    singles = np.vstack([oracle.embed_word(w) for w in vocab])
    assert np.array_equal(batch_vecs, singles), "embed slab kernel diverged"

    # Columnar keyword postings vs per-item add, same documents.
    bags = [(d.doc_id, tokenize(d.text)) for d in lake.documents]
    bulk_index = InvertedIndex()
    bulk_index.build_bulk(bags)
    item_index = InvertedIndex()
    for key, terms in bags:
        item_index.add(key, terms)
    assert dict(bulk_index._postings) == dict(item_index._postings), \
        "columnar postings diverged"
    assert bulk_index._df == item_index._df, "document frequencies diverged"
    assert bulk_index._collection_tf == item_index._collection_tf, \
        "collection frequencies diverged"
    assert bulk_index._doc_lengths == item_index._doc_lengths, \
        "document lengths diverged"

    batched = _fit_once(lake, "batched")
    legacy = _fit_once(lake, "legacy")
    workload = []
    for table in sorted(batched.profile.table_columns)[:6]:
        workload += [Q.joinable(table, top_n=3), Q.pkfk(table, top_n=3)]
    mismatches = sum(
        batched.engine.discover(q).items != legacy.engine.discover(q).items
        for q in workload
    )
    assert mismatches == 0, f"{mismatches}/{len(workload)} operator mismatches"
    assert set(batched.fit_stats.index_breakdown) == set(
        legacy.fit_stats.index_breakdown
    ), "fit modes disagree on index breakdown groups"

    # Process embed backend: byte-identical embeddings at fit_workers=2.
    # On hosts where the backend can't run it degrades to threads with a
    # warning — parity must hold either way (degrade, never diverge).
    process = _fit_once(
        lake, "batched", fit_workers=2, fit_embed_backend="process"
    )
    for de_id in list(batched.profile.documents) + list(batched.profile.columns):
        a = batched.profile.sketch(de_id)
        b = process.profile.sketch(de_id)
        assert np.array_equal(a.content_embedding, b.content_embedding), de_id
        assert np.array_equal(a.metadata_embedding, b.metadata_embedding), de_id
    process_note = "process backend parity"
    if process.fit_stats.warnings:
        process_note += (
            " (degraded: " + "; ".join(process.fit_stats.warnings) + ")"
        )
    print(f"smoke OK: band kernel, forest backends, embed slab kernel, "
          f"columnar postings, {len(workload)}/{len(workload)} operator "
          f"parity, {process_note}")


def main() -> None:
    # Warm the interpreter (numpy/scipy code paths, allocator) on a small
    # lake so no measured fit pays one-time process costs.
    warmup = generate_pharma_lake(PharmaLakeConfig(
        num_drugs=30, num_enzymes=15, num_documents=30, noise_documents=5,
        interactions_rows=40, targets_rows=30, chembl_compounds=30,
        chebi_compounds=18, union_derived_per_base=1, seed=0,
    )).lake
    _fit_once(warmup, "batched")
    _prepr_reference_fit(warmup)

    pharma = build_benchmark("1B").lake
    results = {
        "pharma_1b": _bench_lake("Pharma-1B", pharma),
        "pharma_10x": _bench_lake("Pharma-1B x10", _scaled_lake(pharma),
                                  reference_repeats=1, process_leg=True),
    }
    recorded_mean_ms = sum(RECORDED_PREPR_MS) / len(RECORDED_PREPR_MS)
    one_b = results["pharma_1b"]
    one_b["recorded_prepr_ms"] = RECORDED_PREPR_MS
    one_b["speedup_vs_recorded"] = round(
        recorded_mean_ms / one_b["batched_ms"], 2
    )

    rows = []
    for key, label in (("pharma_1b", "Pharma-1B"), ("pharma_10x", "x10 scaled")):
        r = results[key]
        rows.append([
            label,
            r["prepr_reference_ms"],
            r["legacy_ms"],
            r["batched_ms"],
            f"{r['speedup_vs_reference']:.1f}x",
            f"{r['speedup_vs_legacy']:.1f}x",
        ])
    report = format_table(
        ["Lake", "pre-PR ref (ms)", "legacy (ms)", "batched (ms)",
         "vs pre-PR", "vs legacy"],
        rows,
        title="Cold CMDL.fit: batched pipeline vs per-item baselines",
    )
    report += (
        f"\n  recorded pre-PR baseline (results.txt, bench_incremental cold fits):"
        f" {recorded_mean_ms:.0f} ms mean of {sorted(RECORDED_PREPR_MS)}"
        f"\n  batched vs recorded pre-PR baseline: "
        f"{one_b['speedup_vs_recorded']:.1f}x"
        f" ({one_b['batched_ms']:.0f} ms vs {recorded_mean_ms:.0f} ms)"
        f"\n  pre-PR reference re-measured on this host (conservative: shares"
        f" this PR's PPMI/pipeline speedups): {one_b['prepr_reference_ms']:.0f} ms"
    )
    for key, label in (("pharma_1b", "Pharma-1B"), ("pharma_10x", "x10 scaled")):
        stats = results[key]["fit_stats_batched_ms"]
        breakdown = " ".join(f"{k}={v:.0f}ms" for k, v in stats.items())
        report += (f"\n  FitStats ({label}, batched, per-stage minima across"
                   f" the cold-fit reps — minimised independently, so stages"
                   f" need not sum to total): {breakdown}")
        structures = " ".join(
            f"{k}={v:.0f}ms"
            for k, v in results[key]["index_breakdown_ms"].items()
        )
        report += f"\n  index stage by structure ({label}): {structures}"
        kernel = " ".join(
            f"{k}={v:.0f}ms"
            for k, v in results[key]["embed_breakdown_ms"].items()
        )
        report += f"\n  embed stage by kernel ({label}, best-embed rep): {kernel}"
        report += f"\n  value-operator parity batched vs legacy ({label}): " \
                  f"{results[key]['parity']} identical"
        for note in results[key]["fit_warnings"]:
            report += f"\n  fit warning ({label}): {note}"
    process = results["pharma_10x"].get("process_backend")
    if process:
        report += (
            f"\n  process embed backend (x10, fit_workers="
            f"{process['fit_workers']}): total={process['batched_ms']:.0f}ms"
            f" embed={process['fit_stats_ms']['embed']:.0f}ms,"
            f" parity {process['parity']}"
        )
        if process["single_core_host"]:
            report += ("\n    [single-core host: process overlap is "
                       "attribution, not speedup — leg recorded for parity "
                       "and multi-core hosts]")
        for note in process["warnings"]:
            report += f"\n    process-backend warning: {note}"
    print("\n" + report)
    with RESULTS_PATH.open("a") as fh:
        fh.write(report + "\n\n")

    mismatch_total = sum(r.pop("_mismatches") for r in results.values())
    with JSON_PATH.open("w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")

    assert mismatch_total == 0, "batched fit diverged from the legacy path"
    # The per-item path shares the vectorised substrate this PR built
    # (bucket table, fingerprint cache, memos), so at seed scale the two
    # fit modes land within host noise of each other — the batched path
    # must merely never be meaningfully slower.
    assert one_b["batched_ms"] <= 1.25 * one_b["legacy_ms"], (
        "batched fit fell well behind the per-item path: "
        f"{one_b['batched_ms']:.0f} ms vs {one_b['legacy_ms']:.0f} ms"
    )
    # The recorded baseline was measured on this repo's benchmark host; on
    # clearly slower hardware (reference fit slower than the recorded mean)
    # the cross-run ratio is meaningless, so the gate only applies when the
    # host is at least as fast as the recording conditions.
    if one_b["prepr_reference_ms"] <= recorded_mean_ms:
        assert one_b["speedup_vs_recorded"] >= MIN_SPEEDUP_VS_RECORDED, (
            f"batched cold fit must be >= {MIN_SPEEDUP_VS_RECORDED}x faster "
            f"than the recorded pre-PR baseline ({recorded_mean_ms:.0f} ms), "
            f"got {one_b['speedup_vs_recorded']:.1f}x"
        )
        ten_x = results["pharma_10x"]
        embed_min = ten_x["fit_stats_batched_ms"]["embed"]
        assert embed_min <= MAX_10X_EMBED_MS, (
            f"10x embed stage must be <= {MAX_10X_EMBED_MS:.0f} ms "
            f"(>= 2x the recorded {RECORDED_10X_EMBED_MS:.0f} ms), "
            f"got {embed_min:.0f} ms"
        )
        keyword_min = ten_x["index_breakdown_ms"]["keyword"]
        assert keyword_min <= MAX_10X_KEYWORD_MS, (
            f"10x keyword index build must be <= {MAX_10X_KEYWORD_MS:.0f} ms "
            f"(>= 1.5x the recorded {RECORDED_10X_KEYWORD_MS:.0f} ms), "
            f"got {keyword_min:.0f} ms"
        )
    else:
        print("  [recorded-baseline and per-stage gates skipped: this host "
              "is slower than the conditions the pre-PR baseline was "
              "recorded under]")
    assert one_b["speedup_vs_reference"] >= MIN_SPEEDUP_VS_REFERENCE, (
        f"batched cold fit must be >= {MIN_SPEEDUP_VS_REFERENCE}x faster than "
        f"the re-measured pre-PR reference, got "
        f"{one_b['speedup_vs_reference']:.1f}x"
    )


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        smoke()
    else:
        main()
