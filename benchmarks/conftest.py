"""Shared benchmark fixtures: lakes and fitted CMDL engines (session scope).

The benchmark suite regenerates every table and figure of the paper's
evaluation (§6). Run with::

    pytest benchmarks/ --benchmark-only -s

(-s shows the paper-style result tables; they are also appended to
``benchmarks/results.txt``.)
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.system import CMDL, CMDLConfig
from repro.eval.benchmarks import build_benchmark

RESULTS_PATH = Path(__file__).parent / "results.txt"

#: Settings used for every fitted engine in the benchmark suite. The sample
#: fraction is raised above the paper's 10% because our lakes are ~10x
#: smaller; the paper's absolute sample sizes correspond to this fraction.
BENCH_CONFIG = dict(sample_fraction=0.3, max_epochs=80)


def emit(text: str) -> None:
    """Print a result block and append it to the results file."""
    print("\n" + text)
    with RESULTS_PATH.open("a") as fh:
        fh.write(text + "\n\n")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    RESULTS_PATH.write_text("")


# --------------------------------------------------------------- benchmarks


@pytest.fixture(scope="session")
def bench_1a():
    return build_benchmark("1A")


@pytest.fixture(scope="session")
def bench_1b():
    return build_benchmark("1B")


@pytest.fixture(scope="session")
def bench_1c():
    return build_benchmark("1C")


# ------------------------------------------------------------------ engines


def _fit(lake, gold_pairs=None, **overrides):
    config = CMDLConfig(**{**BENCH_CONFIG, **overrides})
    cmdl = CMDL(config)
    cmdl.fit(lake, gold_pairs=gold_pairs)
    return cmdl


def make_gold_pairs(cmdl_profile, ground_truth, fraction=0.1, seed=7):
    """Tiny gold set from a benchmark's GT: (doc, column, 0/1) triples."""
    rng = np.random.default_rng(seed)
    text_cols = cmdl_profile.text_discovery_columns()
    col_by_table: dict[str, list[str]] = {}
    for c in text_cols:
        col_by_table.setdefault(cmdl_profile.columns[c].table_name, []).append(c)
    queries = ground_truth.queries
    n = max(1, int(len(queries) * fraction))
    picked = [queries[i] for i in rng.choice(len(queries), size=n, replace=False)]
    pairs = []
    for d in picked:
        rel = [t for t in ground_truth.relevant(d) if t in col_by_table]
        for t in rel[:2]:
            pairs.append((d, col_by_table[t][0], 1))
        neg = [t for t in col_by_table if t not in ground_truth.relevant(d)]
        for i in rng.choice(len(neg), size=min(2, len(neg)), replace=False):
            pairs.append((d, col_by_table[neg[i]][0], 0))
    return pairs


@pytest.fixture(scope="session")
def pharma_cmdl(bench_1b):
    return _fit(bench_1b.lake)


@pytest.fixture(scope="session")
def pharma_cmdl_gold(bench_1b, pharma_cmdl):
    gold = make_gold_pairs(pharma_cmdl.profile, bench_1b.ground_truth)
    return _fit(bench_1b.lake, gold_pairs=gold)


@pytest.fixture(scope="session")
def ukopen_cmdl(bench_1a):
    return _fit(bench_1a.lake)


@pytest.fixture(scope="session")
def ukopen_cmdl_gold(bench_1a, ukopen_cmdl):
    gold = make_gold_pairs(ukopen_cmdl.profile, bench_1a.ground_truth)
    return _fit(bench_1a.lake, gold_pairs=gold)


@pytest.fixture(scope="session")
def mlopen_cmdl(bench_1c):
    return _fit(bench_1c.lake)


@pytest.fixture(scope="session")
def mlopen_cmdl_gold(bench_1c, mlopen_cmdl):
    gold = make_gold_pairs(mlopen_cmdl.profile, bench_1c.ground_truth)
    return _fit(bench_1c.lake, gold_pairs=gold)


def uniqueness_of(lake):
    return {c.qualified_name: c.uniqueness for c in lake.columns}
