"""Fault benchmark: kill a shard worker under churn, measure the damage.

One process-backed server, reader threads running canary-checked batches,
a mutator thread flipping the canary and adding ledger tables — and at a
fixed point in the window, ``SIGKILL`` to a shard worker. Measured:

* **recovery latency** — wall-clock from the kill to the first query
  that *started after the kill* completing successfully (recovery is
  lazy: the respawn happens inside the first read that needs the shard);
* **QPS timeline** — completions per 0.5 s bucket across the window, so
  the dip around the kill and the recovery back to steady state are
  visible;
* **torn reads** — every canary batch checks the snapshot invariant
  (exactly one of the two flip tokens matches); asserted **zero**, kill
  or no kill;
* **lost mutations** — the mutator keeps a ledger of acknowledged
  mutations; after the run the catalog is checkpointed, closed, and
  reopened in-process, and every acknowledged table must be present:
  an acked mutation is journaled before it is applied, so a crash may
  delay it but never lose it. Asserted **zero lost**.

Appends to results.txt and emits BENCH_faults.json.

Run:  PYTHONPATH=src python benchmarks/bench_faults.py
      PYTHONPATH=src python benchmarks/bench_faults.py --smoke   # short CI run
"""

from __future__ import annotations

import json
import shutil
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_serving import (
    TOKEN_A,
    TOKEN_B,
    _canary_batch,
    _canary_table,
    _canary_violation,
    _config,
    _copy_lake,
    _lake,
    _queries,
)

from repro.core.session import open_lake
from repro.eval.reporting import format_table
from repro.relational.table import Table
from repro.serve import LakeServer, ShardUnavailable

RESULTS_PATH = Path(__file__).parent / "results.txt"
JSON_PATH = Path(__file__).parent / "BENCH_faults.json"

READERS = 3
MUTATE_EVERY = 0.02  # seconds between mutator ops
BUCKET = 0.5  # QPS timeline resolution, seconds

#: Fast supervisor knobs: the bench measures recovery latency, not the
#: production backoff schedule.
SERVER_KNOBS = {"backoff_base": 0.01, "backoff_cap": 0.05}


class LedgerMutator(threading.Thread):
    """Canary flips + ledgered table adds; every ack is recorded.

    A mutation that raises :class:`ShardUnavailable` mid-kill is counted
    rejected, not acked — the server's contract is that a rejected
    "safe to retry" mutation applied nothing, and an acked one is
    journaled durably. The post-run audit holds it to that.
    """

    def __init__(self, server: LakeServer):
        super().__init__(daemon=True)
        self.server = server
        self.stop = threading.Event()
        self.acked_tables: list[str] = []
        self.acked_flips = 0
        self.rejected = 0

    def run(self) -> None:
        flip, spawn = 0, 0
        while not self.stop.is_set():
            token = TOKEN_A if flip % 2 == 0 else TOKEN_B
            flip += 1
            try:
                self.server.update_table(_canary_table(token))
            except ShardUnavailable:
                self.rejected += 1
            else:
                self.acked_flips += 1
            if flip % 4 == 0:
                name = f"churn_{spawn}"
                spawn += 1
                try:
                    self.server.add_table(Table.from_dict(name, {
                        "cid": [f"{name}_a", f"{name}_b"],
                        "val": [spawn, spawn + 1],
                    }))
                except ShardUnavailable:
                    self.rejected += 1
                else:
                    self.acked_tables.append(name)
            self.stop.wait(MUTATE_EVERY)


def _kill_under_churn(
    server: LakeServer, queries: list, seconds: float, kill_at: float
) -> dict:
    """Run readers + mutator for ``seconds``; kill worker 0 at ``kill_at``."""
    mutator = LedgerMutator(server)
    log_lock = threading.Lock()
    log: list[tuple[float, float, int]] = []  # (start, end, queries)
    torn = [0]
    errors = [0]
    stop = threading.Event()

    def reader(slot: int) -> None:
        i = slot
        while not stop.is_set():
            canary = i % 3 == 0
            batch = _canary_batch() if canary else [queries[i % len(queries)]]
            start = time.perf_counter()
            try:
                results = server.discover_batch(batch)
            except ShardUnavailable:
                with log_lock:
                    errors[0] += 1
                i += 1
                continue
            end = time.perf_counter()
            with log_lock:
                log.append((start, end, len(batch)))
                if canary and _canary_violation(results):
                    torn[0] += 1
            i += 1

    threads = [
        threading.Thread(target=reader, args=(s,)) for s in range(READERS)
    ]
    mutator.start()
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(kill_at)
    victim = server.backend.workers[0]
    victim.proc.kill()
    victim.proc.wait()
    kill_time = time.perf_counter()
    time.sleep(max(0.0, seconds - (kill_time - t0)))
    stop.set()
    for thread in threads:
        thread.join()
    mutator.stop.set()
    mutator.join()
    t_end = time.perf_counter()

    # Recovery latency: first query that started after the kill and
    # finished successfully (recovery runs lazily inside that query).
    post = [end for start, end, _ in log if start >= kill_time]
    recovery_ms = round(1000 * (min(post) - kill_time), 1) if post else None

    timeline: dict[int, int] = {}
    for _, end, n in log:
        timeline[int((end - t0) / BUCKET)] = (
            timeline.get(int((end - t0) / BUCKET), 0) + n
        )
    buckets = sorted(timeline)
    qps_timeline = [round(timeline[b] / BUCKET, 1) for b in buckets]
    kill_bucket = int((kill_time - t0) / BUCKET)
    before = [timeline[b] / BUCKET for b in buckets if b < kill_bucket]
    after = [timeline[b] / BUCKET for b in buckets if b > kill_bucket]

    return {
        "window_s": round(t_end - t0, 2),
        "kill_at_s": round(kill_time - t0, 2),
        "recovery_ms": recovery_ms,
        "qps_timeline": qps_timeline,
        "qps_before_kill": round(statistics.mean(before), 1) if before else None,
        "qps_kill_bucket": round(timeline.get(kill_bucket, 0) / BUCKET, 1),
        "qps_after_kill": round(statistics.mean(after), 1) if after else None,
        "queries": sum(n for _, _, n in log),
        "torn_reads": torn[0],
        "reader_errors": errors[0],
        "respawns": server.backend.total_respawns,
        "retries": server.backend.total_retries,
        "acked_tables": mutator.acked_tables,
        "acked_flips": mutator.acked_flips,
        "rejected_mutations": mutator.rejected,
    }


def _audit_ledger(catalog_path: Path, acked_tables: list[str]) -> list[str]:
    """Reopen the served catalog in-process; return acked tables it lost."""
    reopened = open_lake(catalog_path)
    try:
        return [
            name for name in acked_tables
            if name not in reopened.table_names
        ]
    finally:
        reopened.close()


def run(seconds: float, kill_at: float, write_files: bool) -> dict:
    lake = _lake()
    workdir = Path(tempfile.mkdtemp(prefix="bench-faults-"))
    try:
        session = open_lake(
            _copy_lake(lake), _config(), shards=2, global_stats=True
        )
        queries = _queries(session)
        session.save(workdir / "faults.catalog")
        session.close()

        server = LakeServer(
            workdir / "faults.catalog", backend="process", **SERVER_KNOBS
        )
        try:
            print(f"kill-under-churn: {READERS} readers, {seconds:.1f}s "
                  f"window, worker 0 killed at {kill_at:.1f}s ...")
            result = _kill_under_churn(server, queries, seconds, kill_at)
            server.checkpoint()
        finally:
            server.close()
        lost = _audit_ledger(workdir / "faults.catalog", result["acked_tables"])
        result["acked_mutations"] = (
            len(result.pop("acked_tables")) + result["acked_flips"]
        )
        result["lost_mutations"] = len(lost)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    report = format_table(
        ["recovery (ms)", "QPS before", "QPS @kill", "QPS after",
         "torn reads", "acked muts", "lost muts", "respawns"],
        [[
            result["recovery_ms"], result["qps_before_kill"],
            result["qps_kill_bucket"], result["qps_after_kill"],
            result["torn_reads"], result["acked_mutations"],
            result["lost_mutations"], result["respawns"],
        ]],
        title=f"Worker kill under churn ({READERS} readers, "
              f"{result['window_s']:.1f}s window, 2 shards, process backend)",
    )
    report += (
        f"\n  QPS timeline ({BUCKET:.1f}s buckets): "
        + " ".join(str(q) for q in result["qps_timeline"])
    )
    report += (
        f"\n  mutations: {result['acked_mutations']} acked, "
        f"{result['rejected_mutations']} rejected mid-kill, "
        f"{result['lost_mutations']} lost after reopen"
    )
    print("\n" + report)
    if write_files:
        with RESULTS_PATH.open("a") as fh:
            fh.write(report + "\n\n")
        with JSON_PATH.open("w") as fh:
            json.dump(result, fh, indent=2)
            fh.write("\n")

    assert result["torn_reads"] == 0, (
        f"snapshot isolation violated across the kill: "
        f"{result['torn_reads']} torn reads"
    )
    assert result["reader_errors"] == 0, (
        f"{result['reader_errors']} reads failed instead of recovering"
    )
    assert result["respawns"] >= 1, "the killed worker was never respawned"
    assert result["recovery_ms"] is not None, "no query completed post-kill"
    assert not lost, f"acked mutations lost after reopen: {lost}"
    assert result["acked_mutations"] > 0, "the churn never acked a mutation"
    return result


def main() -> None:
    run(seconds=6.0, kill_at=2.5, write_files=True)


def smoke() -> None:
    """Short CI pass: same invariants (zero torn reads, zero lost
    mutations, recovery observed), minimal wall-clock."""
    result = run(seconds=2.5, kill_at=1.0, write_files=False)
    print(f"\nsmoke OK: recovered in {result['recovery_ms']} ms, "
          f"{result['torn_reads']} torn reads, "
          f"{result['lost_mutations']} lost mutations")


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        smoke()
    else:
        main()
