"""Figure 6 — Effectiveness of the cross-modality (Doc->Table) discovery.

Per benchmark (1A, 1B, 1C), sweeps k and reports precision/recall for:

* CMDL solo embeddings, CMDL joint embeddings, CMDL joint + gold tuning;
* Elastic BM25 (content+schema), Elastic LM-Dirichlet, BM25 content-only,
  BM25 schema-only;
* Containment search (LSH Ensemble sketches);
* Entity matching: generic SpaCy-style Jaccard, Jaro, and the domain-tuned
  "SciSpaCy" variant on 1B. Jaro on 1B is attempted with the comparison
  budget — the paper reports it infeasible, and the budget check reproduces
  that outcome.
"""

from __future__ import annotations

import pytest

from conftest import emit
from repro.baselines import (
    CMDLDocToTable,
    ContainmentSearchBaseline,
    ElasticSearchBaseline,
    EntityMatchingBaseline,
)
from repro.baselines.entity_matching import JaroBudgetExceeded
from repro.eval.reporting import format_series
from repro.eval.runner import evaluate_doc_to_table
from repro.lakes.vocab import pharma_vocabulary

MAX_QUERIES = 60


def _methods(cmdl, cmdl_gold, lake, domain_lexicon=None):
    engine = cmdl.engine
    methods = {
        "CMDL Solo Embedding": CMDLDocToTable(engine, "solo"),
        "CMDL Joint Embedding": CMDLDocToTable(engine, "joint"),
        "CMDL Joint + Gold Tuning": CMDLDocToTable(
            cmdl_gold.engine, "joint", label="cmdl_joint_gold"),
        "Elastic-BM25": ElasticSearchBaseline(engine.profile, "bm25"),
        "Elastic-LMDirichlet": ElasticSearchBaseline(engine.profile, "lm_dirichlet"),
        "Elastic BM25-Content Only": ElasticSearchBaseline(
            engine.profile, "bm25_content"),
        "Elastic BM25-Schema Only": ElasticSearchBaseline(
            engine.profile, "bm25_schema"),
        "Containment search": ContainmentSearchBaseline(
            engine.profile, engine.indexes),
        "Entity-SpaCy-Jaccard": EntityMatchingBaseline(
            engine.profile, lake, matcher="jaccard"),
    }
    if domain_lexicon:
        methods["Entity-SciSpaCy-Jaccard (fine-tuned)"] = EntityMatchingBaseline(
            engine.profile, lake, matcher="jaccard", extractor="domain",
            lexicon=domain_lexicon)
    return methods


def _run(benchmark_fixture, methods, k_values):
    lines = []
    for name, method in methods.items():
        points = evaluate_doc_to_table(
            method, benchmark_fixture, k_values=k_values,
            max_queries=MAX_QUERIES)
        lines.append(format_series(name, points))
    return lines


def test_fig6a_benchmark_1a(benchmark, bench_1a, ukopen_cmdl, ukopen_cmdl_gold):
    methods = _methods(ukopen_cmdl, ukopen_cmdl_gold, bench_1a.lake)
    lines = benchmark.pedantic(
        _run, args=(bench_1a, methods, bench_1a.k_values),
        rounds=1, iterations=1)
    emit("Figure 6(a) - Benchmark 1A (UK-Open)\n" + "\n".join(lines))
    assert len(lines) == len(methods)


def test_fig6b_benchmark_1b(benchmark, bench_1b, pharma_cmdl, pharma_cmdl_gold):
    vocab = pharma_vocabulary(num_drugs=120, num_enzymes=60)
    lexicon = set(vocab.pool("drug")) | set(vocab.pool("enzyme"))
    methods = _methods(pharma_cmdl, pharma_cmdl_gold, bench_1b.lake,
                       domain_lexicon=lexicon)
    lines = benchmark.pedantic(
        _run, args=(bench_1b, methods, bench_1b.k_values),
        rounds=1, iterations=1)
    emit("Figure 6(b) - Benchmark 1B (Pharma)\n" + "\n".join(lines))
    assert len(lines) == len(methods)


def test_fig6b_jaro_infeasible_on_1b(benchmark, bench_1b, pharma_cmdl):
    """The paper: Jaro on 1B 'was not feasible to compute' (10+ days)."""

    def attempt():
        jaro = EntityMatchingBaseline(
            pharma_cmdl.profile, bench_1b.lake, matcher="jaro",
            max_pairs_budget=2000)
        try:
            evaluate_doc_to_table(jaro, bench_1b, k_values=(4,), max_queries=10)
            return "completed"
        except JaroBudgetExceeded:
            return "budget exceeded (matches the paper: infeasible)"

    outcome = benchmark.pedantic(attempt, rounds=1, iterations=1)
    emit(f"Figure 6(b) - Entity-SpaCy-Jaro on 1B: {outcome}")
    assert "budget exceeded" in outcome


def test_fig6c_benchmark_1c(benchmark, bench_1c, mlopen_cmdl, mlopen_cmdl_gold):
    methods = _methods(mlopen_cmdl, mlopen_cmdl_gold, bench_1c.lake)
    lines = benchmark.pedantic(
        _run, args=(bench_1c, methods, bench_1c.k_values),
        rounds=1, iterations=1)
    emit("Figure 6(c) - Benchmark 1C (ML-Open)\n" + "\n".join(lines))
    assert len(lines) == len(methods)


def test_fig6_shape_cmdl_beats_schema_search(bench_1b, pharma_cmdl, benchmark):
    """Shape check: schema-only elastic is never competitive (paper §6.1)."""

    def compare():
        solo = evaluate_doc_to_table(
            CMDLDocToTable(pharma_cmdl.engine, "solo"), bench_1b,
            k_values=(6,), max_queries=MAX_QUERIES)[0]
        schema = evaluate_doc_to_table(
            ElasticSearchBaseline(pharma_cmdl.profile, "bm25_schema"),
            bench_1b, k_values=(6,), max_queries=MAX_QUERIES)[0]
        return solo, schema

    solo, schema = benchmark.pedantic(compare, rounds=1, iterations=1)
    emit(
        "Figure 6 shape check (1B, k=6): "
        f"CMDL solo R={solo.recall:.2f} vs schema-only R={schema.recall:.2f}"
    )
    assert solo.recall > schema.recall
