"""Micro-benchmark: indexed vs exact structured-discovery latency.

Compares the two strategies of the candidate-generation layer on the seed
lakes — per-query joinable-column search, per-table unionable search, and
the full PK-FK sweep — and checks that top-k results agree. Run it as a
smoke check (no joint training, finishes in well under a minute)::

    PYTHONPATH=src python benchmarks/bench_candidates.py

It is intentionally NOT named ``test_*``: the tier-1 suite should not pay
for a latency sweep. The ``slow``-marked parity tests in
``tests/core/test_candidates.py`` cover correctness.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.joinability import JoinDiscovery
from repro.core.pkfk import PKFKDiscovery
from repro.core.system import CMDL, CMDLConfig
from repro.core.unionability import UnionDiscovery
from repro.eval.benchmarks import build_benchmark
from repro.eval.reporting import format_table

MAX_QUERIES = 15


def _timed(fn, queries):
    """Mean per-query milliseconds and the per-query results."""
    results = []
    start = time.perf_counter()
    for q in queries:
        results.append(fn(q))
    elapsed = time.perf_counter() - start
    return 1000.0 * elapsed / max(len(queries), 1), results


def _agreement(exact_results, indexed_results):
    """Fraction of queries whose top-k id lists agree exactly."""
    same = sum(
        [i for i, _ in e] == [i for i, _ in x]
        for e, x in zip(exact_results, indexed_results)
    )
    return same / max(len(exact_results), 1)


def run(bench_id: str, lake=None, scope_tables=None) -> list[list]:
    if lake is None:
        bench = build_benchmark(bench_id)
        lake, scope_tables = bench.lake, bench.scope_tables
    in_scope = (lambda t: True) if scope_tables is None else scope_tables.__contains__
    engine = CMDL(CMDLConfig(use_joint=False)).fit(lake)
    profile = engine.profile

    rows = []

    # Joinable-column queries over the benchmark's eligible columns.
    join_queries = [
        cid for cid, s in profile.columns.items()
        if s.tags is not None and s.tags.join_discovery
        and in_scope(s.table_name)
    ][:MAX_QUERIES]
    exact_jd = JoinDiscovery(profile)
    indexed_jd = engine.join_discovery
    ems, er = _timed(lambda c: exact_jd.joinable_columns(c, k=10), join_queries)
    ims, ir = _timed(lambda c: indexed_jd.joinable_columns(c, k=10), join_queries)
    rows.append(["join", len(join_queries), round(ems, 2), round(ims, 2),
                 round(ems / ims, 1) if ims else float("inf"),
                 round(_agreement(er, ir), 2)])

    # Unionable-table queries.
    union_queries = sorted(t for t in profile.table_columns if in_scope(t))
    union_queries = union_queries[:MAX_QUERIES]
    exact_ud = UnionDiscovery(profile)
    indexed_ud = engine.union_discovery
    ems, er = _timed(lambda t: exact_ud.unionable_tables(t, k=5), union_queries)
    ims, ir = _timed(lambda t: indexed_ud.unionable_tables(t, k=5), union_queries)
    rows.append(["union", len(union_queries), round(ems, 2), round(ims, 2),
                 round(ems / ims, 1) if ims else float("inf"),
                 round(_agreement(er, ir), 2)])

    # Full PK-FK sweep (one "query" = the whole discover pass).
    uniq = {c.qualified_name: c.uniqueness for c in lake.columns}
    exact_pkfk = PKFKDiscovery(profile, uniq)
    indexed_pkfk = PKFKDiscovery(
        profile, uniq, candidates=engine.candidates
    )
    ems, er = _timed(lambda _: exact_pkfk.discover(table_scope=scope_tables), [None])
    ims, ir = _timed(lambda _: indexed_pkfk.discover(table_scope=scope_tables), [None])
    links = lambda res: [(l.pk_column, l.fk_column) for l in res[0]]
    rows.append(["pkfk sweep", 1, round(ems, 2), round(ims, 2),
                 round(ems / ims, 1) if ims else float("inf"),
                 1.0 if links(er) == links(ir) else 0.0])

    return rows


HEADERS = ["Operation", "Queries", "Exact ms/q", "Indexed ms/q", "Speedup",
           "Top-k agreement"]


def run_scaled() -> list[list]:
    """A lake large enough for LSH banding to activate (partitions > scan
    limit), demonstrating the sub-linear regime the seed lakes are below."""
    from repro.lakes.mlopen import MLOpenLakeConfig, generate_mlopen_lake

    config = MLOpenLakeConfig(
        ss_tables=30, ss_rows=30, ms_tables=40, ms_rows=50, ls_tables=40,
        ls_rows=80, num_reviews=30, noise_reviews=5, seed=0,
    )
    lake = generate_mlopen_lake(config).lake
    return run("scaled-mlopen", lake=lake, scope_tables=None)


def main(scaled: bool = False) -> None:
    for bench_id in ("2A", "2C-LS", "2D-drugbank"):
        print(format_table(
            HEADERS, run(bench_id),
            title=f"Candidate layer: indexed vs exact ({bench_id})",
        ))
        print()
    if scaled:
        print(format_table(
            HEADERS, run_scaled(),
            title="Candidate layer: indexed vs exact (scaled ML-Open)",
        ))
        print()


if __name__ == "__main__":
    main(scaled="--scaled" in sys.argv[1:])
