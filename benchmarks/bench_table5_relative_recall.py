"""Table 5 — Comparing individual similarity metrics (Relative Recall).

For the unionability task, the RR of each individual measure (name,
containment, numeric, semantic) against the union of all measures, plus the
fraction of queries answered, on Benchmarks 3A and 3B. The paper's point:
different benchmarks lean on different measures, and the ensemble is robust
to both.
"""

from __future__ import annotations

from conftest import emit
from repro.core.unionability import UNION_MEASURES, UnionDiscovery
from repro.eval.benchmarks import build_benchmark
from repro.eval.reporting import format_table
from repro.eval.runner import union_relative_recall

MAX_QUERIES = 20


def _rows_for(bench_id, profile):
    bench = build_benchmark(bench_id)
    ud = UnionDiscovery(profile)
    stats = union_relative_recall(ud, bench, UNION_MEASURES, k=10,
                                  max_queries=MAX_QUERIES)
    order = list(UNION_MEASURES) + ["ensemble"]
    rr_row = [bench_id, "RR"] + [round(stats[m]["relative_recall"], 2)
                                 for m in order]
    qa_row = [bench_id, "Queries answered"] + [
        f"{100 * stats[m]['queries_answered']:.0f}%" for m in order
    ]
    return rr_row, qa_row, stats


def test_table5_relative_recall(benchmark, ukopen_cmdl, pharma_cmdl):
    def run():
        rows = []
        all_stats = {}
        for bench_id, cmdl in (("3A", ukopen_cmdl), ("3B", pharma_cmdl)):
            rr, qa, stats = _rows_for(bench_id, cmdl.profile)
            rows += [rr, qa]
            all_stats[bench_id] = stats
        return rows, all_stats

    rows, all_stats = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["Benchmark", "Metric", "name", "containment", "numeric",
         "semantic", "CMDL ensemble"],
        rows, title="Table 5: Relative Recall of individual similarity metrics",
    ))

    for bench_id, stats in all_stats.items():
        ensemble_rr = stats["ensemble"]["relative_recall"]
        # The ensemble must be at least as good as the weakest measure and
        # answer every query (the paper's robustness claim).
        assert ensemble_rr >= min(
            stats[m]["relative_recall"] for m in UNION_MEASURES)
        assert stats["ensemble"]["queries_answered"] >= max(
            stats[m]["queries_answered"] for m in UNION_MEASURES) - 1e-9
