"""Table 1 — Overview of the evaluation datasets.

Regenerates the lake-statistics table: per data collection, the number of
tables, DEs (columns for tabular collections, documents for text), CSV
payload sizes, and the numeric-attribute fraction.
"""

from __future__ import annotations

from conftest import emit
from repro.eval.reporting import format_table
from repro.relational.csvio import table_to_csv


def _collection_rows(generated, lake_label):
    rows = []
    for coll, table_names in sorted(generated.collections.items()):
        tables = [generated.lake.table(n) for n in table_names]
        columns = [c for t in tables for c in t.columns]
        numeric = sum(1 for c in columns if c.dtype.is_numeric)
        size_kb = sum(len(table_to_csv(t)) for t in tables) / 1024
        rows.append([
            lake_label, coll, "CSV", len(tables), len(columns),
            f"{size_kb:.0f}kB", f"{100 * numeric / max(len(columns), 1):.0f}%",
        ])
    docs = generated.lake.documents
    if docs:
        text_kb = sum(len(d.text) for d in docs) / 1024
        rows.append([
            lake_label, "text corpus", "Text", "-", len(docs),
            f"{text_kb:.0f}kB", "-",
        ])
    return rows


def test_table1_lake_statistics(benchmark, bench_1a, bench_1b, bench_1c):
    def build():
        rows = []
        rows += _collection_rows(bench_1b.generated, "Pharma")
        rows += _collection_rows(bench_1a.generated, "UK-Open")
        rows += _collection_rows(bench_1c.generated, "ML-Open")
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(format_table(
        ["Data lake", "Collection", "Format", "Tables", "DEs", "Size",
         "Numeric attrs"],
        rows,
        title="Table 1: Overview of the evaluation datasets (scaled synthetic)",
    ))
    assert len(rows) >= 8
