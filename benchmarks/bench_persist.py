"""Persistent-catalog benchmark: reopen from disk vs cold refit.

The promise of the store subsystem is that a fitted lake session becomes
a durable artifact: ``session.save(path)`` writes one SQLite catalog per
shard, and ``open_lake(path)`` rebuilds the exact session — profiles,
signature slabs, index postings, embedder state — without re-profiling a
single table. This bench measures that trade on Pharma-1B and the ~10x
scaled lake (same derivation as bench_fit.py):

* **cold fit** — ``open_lake(lake, config)``: profile + embed + index.
* **save** — full catalog write of the fitted session.
* **reopen** — ``open_lake(path)``: decode slabs, rebuild derived caches.

The headline gate: reopening Pharma-1B must be at least 10x faster than
refitting it. A parity spot-check (joinable/pkfk/content_search over the
reopened session vs the live one) guards against a fast-but-wrong load;
the byte-level contract lives in tests/store/test_persistence.py.

Appends to results.txt and emits BENCH_persist.json.

Run:  PYTHONPATH=src python benchmarks/bench_persist.py
"""

from __future__ import annotations

import gc
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.session import open_lake
from repro.core.srql import Q
from repro.core.system import CMDLConfig
from repro.eval.benchmarks import build_benchmark
from repro.eval.reporting import format_table
from repro.lakes.pharma import PharmaLakeConfig, generate_pharma_lake
from repro.lakes.synthesis import derive_unionable_tables
from repro.relational.catalog import DataLake

RESULTS_PATH = Path(__file__).parent / "results.txt"
JSON_PATH = Path(__file__).parent / "BENCH_persist.json"

#: Hard floor asserted at the end: reopen vs cold refit on Pharma-1B.
MIN_LOAD_SPEEDUP = 10.0


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def _config() -> CMDLConfig:
    # The full default stack, joint model included: a cold refit pays
    # embedder + joint training and every index build — exactly the work
    # a reopen avoids. (bench_fit.py disables the joint model because it
    # measures the fit pipeline itself; here the refit cost is the point.)
    return CMDLConfig()


def _scaled_lake(base: DataLake, derived_per_base: int = 9) -> DataLake:
    derived, _ = derive_unionable_tables(
        base.tables, derived_per_base=derived_per_base, seed=7,
        name_prefix="scale",
    )
    lake = DataLake(name=f"{base.name}-x{derived_per_base + 1}")
    for table in base.tables:
        lake.add_table(table)
    for table in derived:
        lake.add_table(table)
    for document in base.documents:
        lake.add_document(document)
    return lake


def _workload(profile) -> list:
    queries = [Q.content_search("compound trial rate", k=5),
               Q.metadata_search("report", k=5),
               Q.cross_modal("compound formulation trial", top_n=3)]
    for table in sorted(profile.table_columns)[:8]:
        queries += [Q.joinable(table, top_n=3), Q.pkfk(table, top_n=3)]
    return queries


def _bench_lake(name: str, lake: DataLake, workdir: Path,
                shards: int = 0) -> dict:
    print(f"\n== {name}: {lake.num_tables} tables / {lake.num_columns} "
          f"columns / {lake.num_documents} documents"
          f"{f' / {shards} shards' if shards else ''} ==")
    catalog = workdir / f"{name.lower().replace(' ', '-')}.catalog"

    def fit():
        if shards:
            return open_lake(lake, _config(), shards=shards,
                             global_stats=True)
        return open_lake(lake, _config())

    # Best-of-2 cold fits (the second run reuses warmed allocator state,
    # matching the conditions the reopen samples run under).
    fit_s, live = _timed(fit)
    fit2_s, live2 = _timed(fit)
    if fit2_s < fit_s:
        fit_s, live = fit2_s, live2
    else:
        del live2
    gc.collect()

    save_s, _ = _timed(lambda: live.save(catalog))
    catalog_mb = live._store.catalog_bytes() / 1e6

    reopen_s = None
    reopened = None
    for _ in range(3):
        if reopened is not None:
            reopened.close()
            del reopened
            gc.collect()
        seconds, reopened = _timed(lambda: open_lake(catalog))
        reopen_s = seconds if reopen_s is None else min(reopen_s, seconds)

    workload = _workload(live.profile)
    mismatches = sum(
        reopened.discover(q).items != live.discover(q).items
        for q in workload
    )
    reopened.close()
    live.close()
    gc.collect()

    return {
        "lake": {"tables": lake.num_tables, "columns": lake.num_columns,
                 "documents": lake.num_documents},
        "shards": shards,
        "fit_ms": round(1000 * fit_s, 1),
        "save_ms": round(1000 * save_s, 1),
        "reopen_ms": round(1000 * reopen_s, 1),
        "catalog_mb": round(catalog_mb, 2),
        "speedup_load_vs_fit": round(fit_s / reopen_s, 2),
        "parity": f"{len(workload) - mismatches}/{len(workload)}",
        "_mismatches": mismatches,
    }


def smoke() -> None:
    """Correctness-only pass for CI: save, reopen, mutate, replay — no
    timing gates, no file writes.

    Run as ``python benchmarks/bench_persist.py --smoke``. Exercises the
    full store stack (catalog write, typed-blob decode, journal replay)
    on a small generated lake, monolithic and sharded, with the default
    corpus-trained embedder — the configuration the latency sweep uses.
    """
    from repro.relational.table import Table

    lake = generate_pharma_lake(PharmaLakeConfig(
        num_drugs=30, num_enzymes=15, num_documents=30, noise_documents=5,
        interactions_rows=40, targets_rows=30, chembl_compounds=30,
        chebi_compounds=18, union_derived_per_base=1, seed=0,
    )).lake

    workdir = Path(tempfile.mkdtemp(prefix="bench-persist-smoke-"))
    try:
        for shards in (0, 2):
            # Each session owns (and mutates) its own catalog of the lake.
            fresh = DataLake(name=lake.name)
            for table in lake.tables:
                fresh.add_table(table)
            for document in lake.documents:
                fresh.add_document(document)
            catalog = workdir / f"smoke-{shards}.catalog"
            live = (open_lake(fresh, _config(), shards=shards,
                              global_stats=True)
                    if shards else open_lake(fresh, _config()))
            live.save(catalog)
            live.close()  # unbind: one store owns a catalog at a time
            reopened = open_lake(catalog)
            workload = _workload(live.profile)
            mismatches = sum(
                reopened.discover(q).items != live.discover(q).items
                for q in workload
            )
            assert mismatches == 0, (
                f"shards={shards}: {mismatches}/{len(workload)} "
                "mismatches after reopen"
            )
            # Mutate the reopened session, drop it without checkpointing,
            # and verify the journal replays to the same state.
            reopened.add_table(Table.from_dict("smoke_extra", {
                "id": ["S1", "S2"], "label": ["alpha", "beta"],
            }))
            live.add_table(Table.from_dict("smoke_extra", {
                "id": ["S1", "S2"], "label": ["alpha", "beta"],
            }))
            reopened._store.close()
            reopened._store = None
            replayed = open_lake(catalog)
            query = Q.content_search("alpha label", k=5)
            assert replayed.discover(query).items == (
                live.discover(query).items
            ), f"shards={shards}: journal replay diverged"
            replayed.close()
            print(f"smoke OK (shards={shards}): {len(workload)} queries "
                  "identical after reopen, journal replay exact")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def main() -> None:
    # Warm the interpreter on a small lake so no measured phase pays
    # one-time import/allocator costs.
    warmup = generate_pharma_lake(PharmaLakeConfig(
        num_drugs=30, num_enzymes=15, num_documents=30, noise_documents=5,
        interactions_rows=40, targets_rows=30, chembl_compounds=30,
        chebi_compounds=18, union_derived_per_base=1, seed=0,
    )).lake
    workdir = Path(tempfile.mkdtemp(prefix="bench-persist-"))
    try:
        session = open_lake(warmup, _config())
        session.save(workdir / "warmup.catalog")
        session.close()
        open_lake(workdir / "warmup.catalog").close()

        pharma = build_benchmark("1B").lake
        results = {
            "pharma_1b": _bench_lake("Pharma-1B", pharma, workdir),
            "pharma_1b_4shards": _bench_lake("Pharma-1B sharded", pharma,
                                             workdir, shards=4),
            "pharma_10x": _bench_lake("Pharma-1B x10", _scaled_lake(pharma),
                                      workdir),
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    rows = []
    for key, label in (("pharma_1b", "Pharma-1B"),
                       ("pharma_1b_4shards", "Pharma-1B / 4 shards"),
                       ("pharma_10x", "x10 scaled")):
        r = results[key]
        rows.append([
            label, r["fit_ms"], r["save_ms"], r["reopen_ms"],
            f"{r['catalog_mb']:.1f} MB",
            f"{r['speedup_load_vs_fit']:.1f}x",
        ])
    report = format_table(
        ["Lake", "cold fit (ms)", "save (ms)", "reopen (ms)",
         "catalog", "load vs refit"],
        rows,
        title="Persistent catalogs: reopen from disk vs cold refit",
    )
    for key, label in (("pharma_1b", "Pharma-1B"),
                       ("pharma_1b_4shards", "Pharma-1B / 4 shards"),
                       ("pharma_10x", "x10 scaled")):
        report += (f"\n  reopen parity vs live session ({label}): "
                   f"{results[key]['parity']} identical")
    print("\n" + report)
    with RESULTS_PATH.open("a") as fh:
        fh.write(report + "\n\n")

    mismatch_total = sum(r.pop("_mismatches") for r in results.values())
    with JSON_PATH.open("w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")

    assert mismatch_total == 0, "reopened session diverged from the live one"
    one_b = results["pharma_1b"]
    assert one_b["speedup_load_vs_fit"] >= MIN_LOAD_SPEEDUP, (
        f"reopening Pharma-1B must be >= {MIN_LOAD_SPEEDUP}x faster than a "
        f"cold refit, got {one_b['speedup_load_vs_fit']:.1f}x "
        f"({one_b['reopen_ms']:.0f} ms vs {one_b['fit_ms']:.0f} ms)"
    )


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        smoke()
    else:
        main()
