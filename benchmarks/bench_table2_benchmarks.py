"""Table 2 — Overview of the evaluation benchmarks.

Per benchmark: data lake, number of queries, average answer size, and the
median query cardinality ratio (mQCR) computed from the ground truth.
"""

from __future__ import annotations

from conftest import emit
from repro.eval.benchmarks import BENCHMARK_BUILDERS, build_benchmark
from repro.eval.reporting import format_table

_TASK_LABEL = {
    "doc_to_table": "Doc-to-Table",
    "syntactic_join": "Table-J-Table (syntactic)",
    "pkfk": "Table-J-Table (PK-FK)",
    "union": "Table-U-Table",
}


def test_table2_benchmark_statistics(benchmark):
    def build():
        rows = []
        for bench_id in BENCHMARK_BUILDERS:
            b = build_benchmark(bench_id)
            gt = b.ground_truth
            rows.append([
                bench_id,
                _TASK_LABEL[b.task],
                b.lake.name,
                b.description,
                gt.num_queries,
                round(gt.average_answer_size(), 1),
                round(gt.mqcr(), 3),
            ])
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(format_table(
        ["Benchmark", "Task", "Lake", "Datasets", "#Queries",
         "Avg answer", "mQCR"],
        rows, title="Table 2: Overview of the evaluation benchmarks",
        float_digits=3,
    ))
    assert len(rows) == len(BENCHMARK_BUILDERS)
    assert all(r[4] > 0 for r in rows)
