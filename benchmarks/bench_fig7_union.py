"""Figure 7 — Evaluation of unionable table discovery.

P@K and R@K curves for Aurum, D3L, and CMDL on Benchmarks 3A (UK-Open
families) and 3B (DrugBank-Synthetic projections/selections).
"""

from __future__ import annotations

from conftest import emit, uniqueness_of
from repro.baselines import AurumBaseline, D3LBaseline
from repro.core.unionability import UnionDiscovery
from repro.eval.benchmarks import build_benchmark
from repro.eval.reporting import format_series
from repro.eval.runner import evaluate_union_curve

MAX_QUERIES = 25
K_3A = (2, 4, 8, 12)
K_3B = (2, 5, 10, 20)


def _curves(bench, profile, k_values):
    uniq = uniqueness_of(bench.lake)
    systems = {
        "Aurum": AurumBaseline(profile, uniq).unionable_tables,
        "D3L": D3LBaseline(profile).unionable_tables,
        "CMDL": UnionDiscovery(profile).unionable_tables,
    }
    lines = []
    results = {}
    for name, fn in systems.items():
        points = evaluate_union_curve(
            lambda t, k, fn=fn: fn(t, k=k), bench, k_values=k_values,
            max_queries=MAX_QUERIES)
        lines.append(format_series(name, points))
        results[name] = points
    return lines, results


def test_fig7_benchmark_3a(benchmark, ukopen_cmdl):
    bench = build_benchmark("3A")

    def run():
        return _curves(bench, ukopen_cmdl.profile, K_3A)

    lines, results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Figure 7 - Benchmark 3A (UK-Open, P@K / R@K)\n" + "\n".join(lines))
    # Shape: CMDL and D3L comparable, both >= Aurum at the largest k.
    final = {name: pts[-1].recall for name, pts in results.items()}
    assert final["CMDL"] >= final["Aurum"]
    assert final["D3L"] >= final["Aurum"] - 0.05


def test_fig7_benchmark_3b(benchmark, pharma_cmdl):
    bench = build_benchmark("3B")

    def run():
        return _curves(bench, pharma_cmdl.profile, K_3B)

    lines, results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("Figure 7 - Benchmark 3B (DrugBank-Synthetic, P@K / R@K)\n"
         + "\n".join(lines))
    final = {name: pts[-1].recall for name, pts in results.items()}
    assert final["CMDL"] >= final["Aurum"]
