"""Figure 9 — Impact of sampling and gold-label sizes on label generation.

(a) Discovery accuracy (Benchmark 1A) as the labeling sample fraction
    varies: small samples (~5-10% at paper scale) already suffice.
(b) Gold-label size effect on weak-LF elimination: a tiny gold set (1%)
    cannot separate the labeling functions; larger ones (5-10%) measure
    their accuracies consistently.
"""

from __future__ import annotations

from conftest import emit, make_gold_pairs
from repro.baselines import CMDLDocToTable
from repro.core.system import CMDL, CMDLConfig
from repro.eval.reporting import format_table
from repro.eval.runner import evaluate_doc_to_table

MAX_QUERIES = 40


def test_fig9a_sample_size_effect(benchmark, bench_1a):
    fractions = (0.1, 0.3, 0.6)

    def run():
        rows = []
        for fraction in fractions:
            cmdl = CMDL(CMDLConfig(sample_fraction=fraction, max_epochs=60))
            cmdl.fit(bench_1a.lake)
            point = evaluate_doc_to_table(
                CMDLDocToTable(cmdl.engine, "joint"), bench_1a,
                k_values=(15,), max_queries=MAX_QUERIES)[0]
            rows.append([f"{100 * fraction:.0f}%",
                         cmdl.labeling_report.positive_pairs,
                         round(point.precision, 3), round(point.recall, 3)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["Sample size", "Positive pairs", "P@15", "R@15"],
        rows, title="Figure 9(a): sampling effect on Benchmark 1A",
        float_digits=3,
    ))
    # The paper: moderate samples are sufficient — accuracy plateaus rather
    # than climbing linearly with the sample.
    recalls = [r[3] for r in rows]
    assert recalls[-1] <= recalls[1] + 0.25


def test_fig9b_gold_label_size_effect(benchmark, bench_1a, ukopen_cmdl):
    fractions = (0.01, 0.05, 0.10)

    def run():
        rows = []
        for fraction in fractions:
            gold = make_gold_pairs(ukopen_cmdl.profile, bench_1a.ground_truth,
                                   fraction=fraction)
            cmdl = CMDL(CMDLConfig(sample_fraction=0.3, max_epochs=10))
            cmdl.fit(bench_1a.lake, gold_pairs=gold)
            report = cmdl.labeling_report
            accs = {k: round(v, 2) for k, v in report.lf_accuracies.items()}
            rows.append([
                f"{100 * fraction:.0f}%", len(gold), str(accs),
                ", ".join(report.disabled_lfs) or "(none)",
            ])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["Gold size", "Gold pairs", "Measured LF accuracies", "Disabled LFs"],
        rows, title="Figure 9(b): gold-label size and weak-LF elimination",
    ))
    assert len(rows) == 3
