"""Serving benchmark: concurrent discovery under churn, thread vs process.

The serving layer's contract is measured, not assumed:

* **snapshot isolation** — reader threads hammer the server while a
  mutator thread flips a canary table between two states; every read
  batch checks the canary invariant (exactly one of the two canary
  tokens matches). A torn read — a batch observing a half-applied or
  cross-generation state — breaks the invariant; the bench counts
  violations and asserts **zero**.
* **sustained QPS + tail latency** — per-query latencies over a fixed
  wall-clock window with the mutator running, reported as QPS / p50 /
  p99 for each backend x cache combination.
* **cache-hit speedup** — a quiescent repeat of the same workload with
  the cache warm (all partials reused, zero shard round-trips) vs cold.

Honesty notes for a single-core CI host: the thread backend shares one
GIL across readers, so its QPS measures lock/merge overhead rather than
parallel scoring; the process backend pays RPC framing per round-trip
and only shows its worth with real cores. Churn here is table-local
(add/update/remove of tables): document churn under ``global_stats``
additionally ripples a corpus-wide df refit per mutation, which is a
different (heavier) write path measured by its own tests.

Appends to results.txt and emits BENCH_serving.json.

Run:  PYTHONPATH=src python benchmarks/bench_serving.py
      PYTHONPATH=src python benchmarks/bench_serving.py --smoke   # parity only
"""

from __future__ import annotations

import json
import shutil
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.session import open_lake
from repro.core.srql import Q
from repro.core.system import CMDLConfig
from repro.embed.hashing_embedder import HashingEmbedder
from repro.eval.reporting import format_table
from repro.lakes.pharma import PharmaLakeConfig, generate_pharma_lake
from repro.relational.catalog import DataLake
from repro.relational.table import Table
from repro.serve import LakeServer

RESULTS_PATH = Path(__file__).parent / "results.txt"
JSON_PATH = Path(__file__).parent / "BENCH_serving.json"

READERS = 4
MEASURE_SECONDS = 4.0
MUTATE_EVERY = 0.015  # seconds between mutator ops

TOKEN_A = "zebragram"
TOKEN_B = "yakogram"
CANARY = "canary_flip"


def _config() -> CMDLConfig:
    # The documented serving-parity configuration: corpus-independent
    # hashing embedder, no joint model, global statistics.
    return CMDLConfig(use_joint=False, embedder=HashingEmbedder(seed=0))


def _copy_lake(lake: DataLake) -> DataLake:
    fresh = DataLake(name=lake.name)
    for table in lake.tables:
        fresh.add_table(table)
    for document in lake.documents:
        fresh.add_document(document)
    return fresh


def _canary_table(token: str) -> Table:
    return Table.from_dict(CANARY, {
        "flip_id": ["F1", "F2", "F3"],
        "note": [f"{token} state", f"{token} marker", token],
    })


def _queries(session) -> list:
    tables = sorted(
        name for name in (
            session.table_names
            if hasattr(session, "table_names") else session.lake.table_names
        )
        if not name.startswith(("churn_", CANARY))
    )[:3]
    queries = [
        Q.content_search("rate change", k=5),
        Q.metadata_search("report", k=5),
        Q.cross_modal("compound formulation trial", top_n=3,
                      representation="solo"),
    ]
    for table in tables:
        queries += [Q.joinable(table, top_n=3), Q.unionable(table, top_n=3),
                    Q.pkfk(table, top_n=3)]
    return queries


def _canary_batch() -> list:
    return [Q.content_search(TOKEN_A, mode="table", k=10),
            Q.content_search(TOKEN_B, mode="table", k=10)]


def _canary_violation(results) -> bool:
    """True when the snapshot is inconsistent: the canary table must
    match exactly one of the two tokens. Table-mode content search ranks
    column ids (``table.column``), so match on the table prefix."""
    def seen(result) -> bool:
        return any(cid.startswith(f"{CANARY}.") for cid, _ in result.items)

    return seen(results[0]) == seen(results[1])


class Mutator(threading.Thread):
    """Background churn: flip the canary, add/remove throwaway tables."""

    def __init__(self, server: LakeServer):
        super().__init__(daemon=True)
        self.server = server
        self.stop = threading.Event()
        self.ops = 0

    def run(self) -> None:
        flip, spawn = 0, 0
        while not self.stop.is_set():
            flip += 1
            token = TOKEN_A if flip % 2 == 0 else TOKEN_B
            self.server.update_table(_canary_table(token))
            self.ops += 1
            if flip % 5 == 0:
                name = f"churn_{spawn}"
                if spawn % 2 == 0:
                    self.server.add_table(Table.from_dict(name, {
                        "cid": ["C1", "C2"], "val": [spawn, spawn + 1],
                    }))
                else:
                    self.server.remove(f"churn_{spawn - 1}")
                spawn += 1
                self.ops += 1
            self.stop.wait(MUTATE_EVERY)


def _measure(server: LakeServer, queries: list, seconds: float) -> dict:
    """QPS / latency / torn reads over a fixed window under churn."""
    mutator = Mutator(server)
    latencies: list[list[float]] = [[] for _ in range(READERS)]
    torn = [0] * READERS
    done = [0] * READERS
    stop = threading.Event()

    def reader(slot: int) -> None:
        i = slot  # stagger the rotation per thread
        while not stop.is_set():
            if i % 4 == 0:
                start = time.perf_counter()
                results = server.discover_batch(_canary_batch())
                elapsed = time.perf_counter() - start
                latencies[slot].append(elapsed / 2)
                done[slot] += 2
                if _canary_violation(results):
                    torn[slot] += 1
            else:
                query = queries[i % len(queries)]
                start = time.perf_counter()
                server.discover(query)
                latencies[slot].append(time.perf_counter() - start)
                done[slot] += 1
            i += 1

    threads = [threading.Thread(target=reader, args=(s,)) for s in
               range(READERS)]
    mutator.start()
    start = time.perf_counter()
    for t in threads:
        t.start()
    time.sleep(seconds)
    stop.set()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    mutator.stop.set()
    mutator.join()

    flat = sorted(x for per in latencies for x in per)
    cache = server.cache
    return {
        "queries": sum(done),
        "qps": round(sum(done) / elapsed, 1),
        "p50_ms": round(1000 * statistics.median(flat), 2),
        "p99_ms": round(1000 * flat[int(len(flat) * 0.99)], 2),
        "torn_reads": sum(torn),
        "churn_ops": mutator.ops,
        "cache_hits": cache.hits if cache is not None else 0,
        "cache_misses": cache.misses if cache is not None else 0,
    }


def _warm_speedup(server: LakeServer, queries: list) -> dict:
    """Quiescent cache-hit speedup: the same batch, cold then warm."""
    if server.cache is not None:
        server.cache.clear()
    start = time.perf_counter()
    server.discover_batch(queries)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    server.discover_batch(queries)
    warm = time.perf_counter() - start
    round_trips = dict(server.last_stats.shard_round_trips)
    return {
        "cold_ms": round(1000 * cold, 2),
        "warm_ms": round(1000 * warm, 2),
        "speedup": round(cold / warm, 2),
        "warm_round_trips": sum(round_trips.values()),
    }


def _sanity_canary(server: LakeServer) -> None:
    results = server.discover_batch(_canary_batch())
    assert not _canary_violation(results), (
        "canary setup broken: the flip table must match exactly one token"
    )


def _lake() -> DataLake:
    lake = generate_pharma_lake(PharmaLakeConfig(
        num_drugs=40, num_enzymes=20, num_documents=40, noise_documents=8,
        interactions_rows=60, targets_rows=40, chembl_compounds=40,
        chebi_compounds=24, union_derived_per_base=1, seed=0,
    )).lake
    lake.add_table(_canary_table(TOKEN_A))
    return lake


def main() -> None:
    lake = _lake()
    workdir = Path(tempfile.mkdtemp(prefix="bench-serving-"))
    results: dict = {"scenarios": {}}
    try:
        # ---- thread backend: one live sharded session, two cache modes
        session = open_lake(_copy_lake(lake), _config(), shards=2,
                            global_stats=True)
        queries = _queries(session)
        for cache in (True, False):
            label = f"thread_{'cache' if cache else 'nocache'}"
            server = LakeServer(session, cache=cache)
            _sanity_canary(server)
            if cache:
                results["cache_warm"] = _warm_speedup(server, queries)
            print(f"measuring {label} ...")
            results["scenarios"][label] = _measure(
                server, queries, MEASURE_SECONDS
            )
            server.close()
        session.close()

        # ---- process backend: saved catalog, one worker per shard
        session = open_lake(_copy_lake(lake), _config(), shards=2,
                            global_stats=True)
        session.save(workdir / "serving.catalog")
        session.close()
        for cache in (True, False):
            label = f"process_{'cache' if cache else 'nocache'}"
            server = LakeServer(workdir / "serving.catalog",
                                backend="process", cache=cache)
            _sanity_canary(server)
            print(f"measuring {label} ...")
            results["scenarios"][label] = _measure(
                server, queries, MEASURE_SECONDS
            )
            server.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    rows = []
    for label, r in results["scenarios"].items():
        backend, cache = label.rsplit("_", 1)
        rows.append([
            backend, "on" if cache == "cache" else "off",
            r["qps"], r["p50_ms"], r["p99_ms"],
            r["torn_reads"], r["churn_ops"],
        ])
    report = format_table(
        ["backend", "cache", "QPS", "p50 (ms)", "p99 (ms)",
         "torn reads", "churn ops"],
        rows,
        title=f"Serving under churn ({READERS} readers, "
              f"{MEASURE_SECONDS:.0f}s windows, 2 shards)",
    )
    warm = results["cache_warm"]
    report += (
        f"\n  quiescent cache-hit speedup: {warm['speedup']:.1f}x "
        f"({warm['cold_ms']:.1f} ms cold -> {warm['warm_ms']:.1f} ms warm, "
        f"{warm['warm_round_trips']} warm round-trips)"
    )
    report += ("\n  note: single-core host figures; the thread backend is "
               "GIL-bound and the process backend pays RPC framing")
    print("\n" + report)
    with RESULTS_PATH.open("a") as fh:
        fh.write(report + "\n\n")
    with JSON_PATH.open("w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")

    torn_total = sum(r["torn_reads"] for r in results["scenarios"].values())
    assert torn_total == 0, (
        f"snapshot isolation violated: {torn_total} torn reads observed"
    )
    assert warm["warm_round_trips"] == 0, (
        "a warm repeat batch should be served entirely from the cache"
    )
    assert warm["speedup"] > 1.0, (
        f"cache-hit speedup must be measurable, got {warm['speedup']}x"
    )


def smoke() -> None:
    """Correctness-only pass for CI: thread and process parity against the
    in-process sharded session, cold and after mutations — no timing.

    Run as ``python benchmarks/bench_serving.py --smoke``.
    """
    lake = _lake()
    workdir = Path(tempfile.mkdtemp(prefix="bench-serving-smoke-"))
    try:
        reference = open_lake(_copy_lake(lake), _config(), shards=2,
                              global_stats=True)
        queries = _queries(reference) + _canary_batch()

        # Thread backend wraps the reference session itself.
        server = LakeServer(reference)
        expected = reference.discover_batch(queries)
        got = server.discover_batch(queries)
        assert [r.items for r in got] == [r.items for r in expected], (
            "thread-backend parity failed"
        )
        server.close()
        print(f"smoke OK (thread): {len(queries)} queries identical")

        # Process backend serves the saved catalog; the reference session
        # unbinds first (one writer per catalog).
        reference.save(workdir / "smoke.catalog")
        reference.close()
        server = LakeServer(workdir / "smoke.catalog", backend="process")
        got = server.discover_batch(queries)
        expected = reference.discover_batch(queries)
        assert [r.items for r in got] == [r.items for r in expected], (
            "process-backend parity failed (cold)"
        )

        for target in (reference, server):
            target.update_table(_canary_table(TOKEN_B))
            target.add_table(Table.from_dict("smoke_extra", {
                "id": ["S1", "S2"], "label": ["alpha", "beta"],
            }))
        got = server.discover_batch(queries)
        expected = reference.discover_batch(queries)
        assert [r.items for r in got] == [r.items for r in expected], (
            "process-backend parity failed (mutated)"
        )
        server.close()
        print(f"smoke OK (process): {len(queries)} queries identical, "
              "cold and after mutations")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        smoke()
    else:
        main()
