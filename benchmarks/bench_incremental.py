"""Smoke benchmark: incremental lake-session mutations vs cold refits.

Opens a mutable session (``CMDL.open``) over the Pharma benchmark lake and
times each mutation primitive — single-table add, document add, table
remove, ``refresh()`` — against the baseline a frozen system would pay for
the same change: a full ``CMDL.fit`` on the final lake. The add path must
be at least 5x cheaper than the refit (it skips corpus-wide re-profiling,
embedder training, and index rebuilds; the gap widens with lake size since
the delta work is per-DE, not per-lake).

Also verifies that the value-semantics operators (joinable / pkfk, which do
not depend on the fit-time embedder corpus) return identical top-k results
from the mutated session and from a cold fit on the same final lake.

Run:  PYTHONPATH=src python benchmarks/bench_incremental.py

Intentionally NOT named ``test_*``: the tier-1 suite should not pay for a
latency sweep; correctness parity lives in
tests/core/test_incremental_parity.py and tests/core/test_session.py.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.srql import Q
from repro.core.system import CMDL, CMDLConfig
from repro.eval.benchmarks import build_benchmark
from repro.eval.reporting import format_table
from repro.relational.catalog import DataLake

RESULTS_PATH = Path(__file__).parent / "results.txt"
MIN_ADD_SPEEDUP = 5.0


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def main() -> None:
    bench = build_benchmark("1B")
    lake = bench.lake
    config = lambda: CMDLConfig(use_joint=False)  # noqa: E731

    # Baseline: what absorbing any change costs a frozen (fit-only) system.
    cold_s, cold = _timed(lambda: CMDL(config()).fit(lake))

    # Session: open over the lake minus its last table, then add it back.
    tables, documents = lake.tables, lake.documents
    delta_table = tables[-1]
    base = DataLake(name=lake.name)
    for table in tables[:-1]:
        base.add_table(table)
    for doc in documents[:-1]:
        base.add_document(doc)
    open_s, session = _timed(lambda: CMDL(config()).open(base))

    add_table_s, _ = _timed(lambda: session.add_table(delta_table))
    add_doc_s, _ = _timed(lambda: session.add_document(documents[-1]))
    remove_s, _ = _timed(lambda: session.remove(delta_table.name))
    readd_s, _ = _timed(lambda: session.add_table(delta_table))
    refresh_s, _ = _timed(lambda: session.refresh())

    # Parity of the value-semantics operators against the cold fit. (The
    # session ends on the full lake: add + remove + re-add + refresh.)
    workload = []
    for table in sorted(cold.profile.table_columns)[:8]:
        workload += [Q.joinable(table, top_n=3), Q.pkfk(table, top_n=3)]
    mismatches = sum(
        session.discover(q).items != cold.discover(q).items for q in workload
    )

    def row(op, seconds):
        return [op, round(1000 * seconds, 1),
                f"{cold_s / seconds:.1f}x" if seconds else "-"]

    rows = [
        ["cold CMDL.fit (baseline)", round(1000 * cold_s, 1), "1.0x"],
        row("add_table (1 table)", add_table_s),
        row("add_document (1 doc)", add_doc_s),
        row("remove (1 table)", remove_s),
        row("re-add after remove", readd_s),
        row("refresh() full refit", refresh_s),
    ]
    report = format_table(
        ["Mutation", "Time (ms)", "vs cold refit"],
        rows,
        title=(f"Incremental lake session vs cold refit on Pharma (1B): "
               f"{lake.num_tables} tables / {lake.num_columns} columns / "
               f"{lake.num_documents} documents"),
    )
    report += (
        f"\n  session open (fit on base lake): {1000 * open_s:.0f} ms"
        f"\n  value-operator parity vs cold fit: "
        f"{len(workload) - mismatches}/{len(workload)} identical"
    )
    print(report)
    with RESULTS_PATH.open("a") as fh:
        fh.write(report + "\n\n")

    assert mismatches == 0, "mutated session diverged from cold fit"
    speedup = cold_s / add_table_s
    assert speedup >= MIN_ADD_SPEEDUP, (
        f"single-table add must be >= {MIN_ADD_SPEEDUP}x cheaper than a cold "
        f"refit, got {speedup:.1f}x"
    )


if __name__ == "__main__":
    main()
