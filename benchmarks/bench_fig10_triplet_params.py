"""Figure 10 — Impact of the triplet-generation parameters.

(a) mini-batch size vs epochs/time to convergence;
(b) hard-sampling setup: average cutoff vs median cutoff vs disabled
    (all-combinations) — the paper's ~10x training-cost gap and the
    accuracy penalty of disabling hard sampling;
(c) triplet-loss margin (beta) sweep vs final model error.

Also includes the pooling ablation called out in DESIGN.md (paper
footnote 3: mean vs max/min pooling for solo embeddings).
"""

from __future__ import annotations

from conftest import emit
from repro.core.indexes import IndexCatalog
from repro.core.joint.minibatch import MiniBatchGenerator
from repro.core.joint.model import JointRepresentationModel
from repro.core.joint.trainer import JointTrainer
from repro.core.joint.triplets import TripletGenerator
from repro.core.labeling import TrainingDatasetGenerator
from repro.eval.reporting import format_table


def _training_inputs(cmdl):
    """Reuse one labeling run; sweeps only retrain the joint model."""
    profile = cmdl.profile
    generator = TrainingDatasetGenerator(
        profile, cmdl.indexes, sample_fraction=0.3, seed=0)
    dataset, _ = generator.generate()
    encodings = {
        de_id: sketch.encoding
        for de_id, sketch in {**profile.documents, **profile.columns}.items()
    }
    return dataset, encodings


def _train(dataset, encodings, batch_fraction=0.08, hard_sampling="average",
           margin=0.2, max_epochs=120):
    batches = MiniBatchGenerator(dataset, batch_fraction=batch_fraction, seed=0)
    triplet_gen = TripletGenerator(encodings, hard_sampling=hard_sampling)
    model = JointRepresentationModel(seed=0)
    trainer = JointTrainer(model, margin=margin, max_epochs=max_epochs)
    result = trainer.train(batches, triplet_gen)
    # Comparable model quality across settings: the violation rate is
    # always measured on the *standard* aggregated triplets at the
    # *reference* margin (0.2), regardless of the training configuration.
    from repro.nn.losses import TripletMarginLoss

    eval_gen = TripletGenerator(encodings, hard_sampling="average")
    trainer.loss_fn = TripletMarginLoss(margin=0.2)
    result.error_percent = trainer._error_percent(batches, eval_gen)
    return result


def test_fig10a_minibatch_size(benchmark, ukopen_cmdl):
    dataset, encodings = _training_inputs(ukopen_cmdl)
    sizes = (0.04, 0.08, 0.16, 0.32)

    def run():
        rows = []
        for fraction in sizes:
            result = _train(dataset, encodings, batch_fraction=fraction)
            rows.append([f"{100 * fraction:.0f}%", result.epochs,
                         round(result.seconds, 2),
                         round(result.final_loss, 4)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["Mini-batch size", "Epochs", "Time (s)", "Final loss"],
        rows, title="Figure 10(a): mini-batch size vs convergence",
        float_digits=4,
    ))
    assert all(r[1] >= 1 for r in rows)


def test_fig10b_hard_sampling(benchmark, ukopen_cmdl):
    dataset, encodings = _training_inputs(ukopen_cmdl)

    def run():
        rows = []
        for setup in ("average", "median", "disabled"):
            # The paper's mini-batch is large enough that disabling hard
            # sampling explodes to (n/2)^2 triplet combinations per anchor;
            # batch_fraction=0.3 puts our scaled lake in the same regime.
            result = _train(dataset, encodings, hard_sampling=setup,
                            batch_fraction=0.3, max_epochs=30)
            rows.append([setup, round(result.seconds, 2), result.epochs,
                         round(result.error_percent, 2)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["Hard sampling", "Time (s)", "Epochs", "Model error %"],
        rows, title="Figure 10(b): hard-sampling setups",
    ))
    times = {r[0]: r[1] for r in rows}
    errors = {r[0]: r[3] for r in rows}
    # Disabling hard sampling explodes the triplet count -> much slower
    # per-epoch training (the paper reports ~10x at their scale) and a less
    # accurate model (paper: 7.34% vs 2.86% error).
    assert times["disabled"] > 1.5 * times["average"]
    assert errors["disabled"] >= errors["average"]
    # Average vs median cutoffs are near-equivalent (paper: "negligible").
    assert abs(times["average"] - times["median"]) < max(
        1.0, 0.8 * times["average"])


def _retrieval_recall(model, cmdl, bench, k=15, max_queries=30):
    """Downstream doc->table recall@k using the trained joint model."""
    from repro.ann.exact import ExactIndex
    from repro.eval.metrics import mean_metric, recall_at_k

    profile = cmdl.profile
    text_cols = profile.text_discovery_columns()
    col_vectors = model.embed_all(
        {c: profile.columns[c].encoding for c in text_cols})
    index = ExactIndex(dim=model.out_dim)
    for cid, vec in col_vectors.items():
        index.add(cid, vec)
    index.build()
    gt = bench.ground_truth
    recalls = []
    for doc_id in gt.queries[:max_queries]:
        query = model.embed(profile.documents[doc_id].encoding[None, :])[0]
        hits = index.query(query, k=k * 4)
        tables = []
        for cid, _ in hits:
            t = profile.columns[cid].table_name
            if bench.in_scope(t) and t not in tables:
                tables.append(t)
        relevant = {t for t in gt.relevant(doc_id) if bench.in_scope(t)}
        if relevant:
            recalls.append(recall_at_k(tables[:k], relevant, k))
    return mean_metric(recalls)


def test_fig10c_margin_sweep(benchmark, ukopen_cmdl, bench_1a):
    """Margin sweep scored by *downstream retrieval* (generalisation)."""
    dataset, encodings = _training_inputs(ukopen_cmdl)
    margins = (0.05, 0.1, 0.2, 0.3, 0.5)

    def run():
        rows = []
        for margin in margins:
            batches = MiniBatchGenerator(dataset, batch_fraction=0.08, seed=0)
            triplet_gen = TripletGenerator(encodings)
            model = JointRepresentationModel(seed=0)
            trainer = JointTrainer(model, margin=margin, max_epochs=60)
            result = trainer.train(batches, triplet_gen)
            recall = _retrieval_recall(model, ukopen_cmdl, bench_1a)
            rows.append([margin, round(result.final_loss, 4),
                         round(recall, 3)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["Margin (beta)", "Final loss", "Downstream R@15 (1A)"],
        rows, title="Figure 10(c): triplet-loss margin sweep",
        float_digits=4,
    ))
    recall_by_margin = {r[0]: r[2] for r in rows}
    # The paper (and Musgrave et al.): low margins in the 0.1-0.3 band give
    # the best generalisation; the extreme margins never beat the band by a
    # meaningful amount.
    band_best = max(recall_by_margin[m] for m in (0.1, 0.2, 0.3))
    assert recall_by_margin[0.5] <= band_best + 0.05
    assert recall_by_margin[0.05] <= band_best + 0.05


def test_fig10d_pooling_ablation(benchmark, bench_1a):
    """DESIGN.md ablation 5: mean vs max/min pooling (paper footnote 3)."""
    from repro.baselines import CMDLDocToTable
    from repro.core.system import CMDL, CMDLConfig
    from repro.eval.runner import evaluate_doc_to_table

    def run():
        rows = []
        for pooling in ("mean", "max", "min"):
            cmdl = CMDL(CMDLConfig(pooling=pooling, use_joint=False, seed=0))
            cmdl.fit(bench_1a.lake)
            point = evaluate_doc_to_table(
                CMDLDocToTable(cmdl.engine, "solo"), bench_1a,
                k_values=(15,), max_queries=30)[0]
            rows.append([pooling, round(point.precision, 3),
                         round(point.recall, 3)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["Pooling", "P@15", "R@15"],
        rows, title="Figure 10(d): pooling ablation (solo embeddings, 1A)",
        float_digits=3,
    ))
    recalls = {r[0]: r[2] for r in rows}
    # Footnote 3: mean pooling represents the whole set better than the
    # extreme-biased variants.
    assert recalls["mean"] >= max(recalls["max"], recalls["min"]) - 0.05
