"""Table 4 — Evaluation of PK-FK join discovery (Benchmark 2D).

Aurum vs CMDL on the three Pharma databases. The paper's shapes:

* DrugBank: CMDL recall >> Aurum (containment vs Jaccard), CMDL precision
  lower (duplicate keys make near-keys pass the key filter);
* ChEMBL: both have modest recall (schema defines fewer joins than exist);
* ChEBI: identical results (all keys numeric; both systems share the
  numeric-overlap measure).
"""

from __future__ import annotations

import time

from conftest import emit, uniqueness_of
from repro.baselines import AurumBaseline
from repro.core.pkfk import PKFKDiscovery
from repro.eval.benchmarks import build_benchmark
from repro.eval.reporting import format_table
from repro.eval.runner import evaluate_pkfk


def _evaluate(database, engine, uniq):
    """Aurum (profile-level baseline) vs CMDL via the fitted engine's
    default indexed PK-FK discovery path."""
    profile = engine.profile
    bench = build_benchmark(f"2D-{database}")
    scope = bench.scope_tables
    cmdl_links = [
        (l.pk_column, l.fk_column)
        for l in engine.pkfk_discovery.discover(table_scope=scope)
    ]
    aurum_links = [
        (l.pk_column, l.fk_column)
        for l in AurumBaseline(profile, uniq).discover_pkfk(table_scope=scope)
    ]
    known = sum(len(bench.ground_truth.relevant(q))
                for q in bench.ground_truth.queries)
    return known, evaluate_pkfk(aurum_links, bench), evaluate_pkfk(cmdl_links, bench)


def test_table4_pkfk(benchmark, pharma_cmdl):
    engine = pharma_cmdl.engine
    uniq = uniqueness_of(build_benchmark("2D-drugbank").lake)

    def run():
        rows = []
        for database in ("drugbank", "chembl", "chebi"):
            known, (ap, ar), (cp, cr) = _evaluate(database, engine, uniq)
            rows.append([database, known, f"{ap:.2f}/{ar:.2f}",
                         f"{cp:.2f}/{cr:.2f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["Database", "Known PKFKs", "Aurum P/R", "CMDL P/R"],
        rows, title="Table 4: PK-FK join discovery (Benchmark 2D)",
    ))

    def pr(cell):
        p, r = cell.split("/")
        return float(p), float(r)

    drugbank = {r[0]: r for r in rows}["drugbank"]
    _, aurum_recall = pr(drugbank[2])
    _, cmdl_recall = pr(drugbank[3])
    assert cmdl_recall > aurum_recall  # the containment recall gap

    chebi = {r[0]: r for r in rows}["chebi"]
    assert chebi[2] == chebi[3]  # identical numeric-key results


def test_table4_indexed_vs_exact(pharma_cmdl):
    """Candidate-layer check: the engine's default indexed PK-FK sweep must
    return exactly the oracle's links on every 2D scope."""
    indexed_discovery = pharma_cmdl.engine.pkfk_discovery
    assert indexed_discovery.strategy == "indexed"
    exact_discovery = PKFKDiscovery(
        pharma_cmdl.profile, indexed_discovery.uniqueness
    )

    rows = []
    for database in ("drugbank", "chembl", "chebi"):
        scope = build_benchmark(f"2D-{database}").scope_tables
        timings = {}
        links = {}
        for label, discovery in (("exact", exact_discovery),
                                 ("indexed", indexed_discovery)):
            start = time.perf_counter()
            links[label] = discovery.discover(table_scope=scope)
            timings[label] = 1000.0 * (time.perf_counter() - start)
        assert [(l.pk_column, l.fk_column) for l in links["exact"]] == [
            (l.pk_column, l.fk_column) for l in links["indexed"]
        ]
        rows.append([database, len(links["indexed"]),
                     round(timings["exact"], 1), round(timings["indexed"], 1)])

    emit(format_table(
        ["Database", "Links", "Exact ms", "Indexed ms"],
        rows, title="Table 4 addendum: indexed vs exact PK-FK sweep",
    ))
