"""Table 4 — Evaluation of PK-FK join discovery (Benchmark 2D).

Aurum vs CMDL on the three Pharma databases. The paper's shapes:

* DrugBank: CMDL recall >> Aurum (containment vs Jaccard), CMDL precision
  lower (duplicate keys make near-keys pass the key filter);
* ChEMBL: both have modest recall (schema defines fewer joins than exist);
* ChEBI: identical results (all keys numeric; both systems share the
  numeric-overlap measure).
"""

from __future__ import annotations

from conftest import emit, uniqueness_of
from repro.baselines import AurumBaseline
from repro.core.pkfk import PKFKDiscovery
from repro.eval.benchmarks import build_benchmark
from repro.eval.reporting import format_table
from repro.eval.runner import evaluate_pkfk


def _evaluate(database, profile, uniq):
    bench = build_benchmark(f"2D-{database}")
    scope = bench.scope_tables
    cmdl_links = [
        (l.pk_column, l.fk_column)
        for l in PKFKDiscovery(profile, uniq).discover(table_scope=scope)
    ]
    aurum_links = [
        (l.pk_column, l.fk_column)
        for l in AurumBaseline(profile, uniq).discover_pkfk(table_scope=scope)
    ]
    known = sum(len(bench.ground_truth.relevant(q))
                for q in bench.ground_truth.queries)
    return known, evaluate_pkfk(aurum_links, bench), evaluate_pkfk(cmdl_links, bench)


def test_table4_pkfk(benchmark, pharma_cmdl):
    profile = pharma_cmdl.profile
    uniq = uniqueness_of(build_benchmark("2D-drugbank").lake)

    def run():
        rows = []
        for database in ("drugbank", "chembl", "chebi"):
            known, (ap, ar), (cp, cr) = _evaluate(database, profile, uniq)
            rows.append([database, known, f"{ap:.2f}/{ar:.2f}",
                         f"{cp:.2f}/{cr:.2f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["Database", "Known PKFKs", "Aurum P/R", "CMDL P/R"],
        rows, title="Table 4: PK-FK join discovery (Benchmark 2D)",
    ))

    def pr(cell):
        p, r = cell.split("/")
        return float(p), float(r)

    drugbank = {r[0]: r for r in rows}["drugbank"]
    _, aurum_recall = pr(drugbank[2])
    _, cmdl_recall = pr(drugbank[3])
    assert cmdl_recall > aurum_recall  # the containment recall gap

    chebi = {r[0]: r for r in rows}["chebi"]
    assert chebi[2] == chebi[3]  # identical numeric-key results
