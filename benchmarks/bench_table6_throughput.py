"""Table 6 — Query throughput for the labeling-function indexes.

Queries per second for the content elastic index, the LSH Ensemble
containment index, and the ANN (Annoy-style) semantic index, probed with
profiled documents. The paper's ordering: semantic ANN >> LSH Ensemble >
elastic content search.

An addendum measures the same content-search workload through the full
SRQL query layer (``engine.discover`` / ``engine.discover_batch``) — the
planner+executor overhead on top of the raw index probe, and the batch
path's amortisation.
"""

from __future__ import annotations

import time

from conftest import emit
from repro.core.srql import Q
from repro.eval.reporting import format_table

PROBES = 100


def _throughput(fn, queries) -> float:
    start = time.perf_counter()
    n = 0
    for q in queries:
        fn(q)
        n += 1
    elapsed = time.perf_counter() - start
    return n / elapsed if elapsed > 0 else float("inf")


def test_table6_index_throughput(benchmark, pharma_cmdl):
    profile = pharma_cmdl.profile
    indexes = pharma_cmdl.indexes
    engine = pharma_cmdl.engine
    docs = [profile.documents[d] for d in sorted(profile.documents)][:PROBES]

    def run():
        content_qps = _throughput(
            lambda s: indexes.column_content.search(s.content_bow.terms, k=10),
            docs)
        containment_qps = _throughput(
            lambda s: indexes.column_containment.query(s.signature, k=10),
            docs)
        semantic_qps = _throughput(
            lambda s: indexes.column_solo.query(s.encoding, k=10),
            docs)
        return [
            ["Content search", "BM25 inverted index", round(content_qps)],
            ["Containment", "LSH Ensemble", round(containment_qps)],
            ["Semantic", "RP-forest ANN", round(semantic_qps)],
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    # Addendum: the same keyword workload through the declarative query
    # layer. Queries reuse each document's token stream as free text.
    srql_queries = [
        Q.content_search(" ".join(s.content_bow.terms), mode="table", k=10)
        for s in docs
    ]
    single_qps = _throughput(engine.discover, srql_queries)
    start = time.perf_counter()
    engine.discover_batch(srql_queries)
    batch_elapsed = time.perf_counter() - start
    batch_qps = len(srql_queries) / batch_elapsed if batch_elapsed else float("inf")
    rows.append(["Content via SRQL discover()", "planner+executor",
                 round(single_qps)])
    rows.append(["Content via SRQL discover_batch()", "planner+executor",
                 round(batch_qps)])

    emit(format_table(
        ["Labeling function", "Index", "Throughput (Qps)"],
        rows, title="Table 6: Query throughput for labeling-function probes",
    ))
    qps = {r[0]: r[2] for r in rows}
    # All probes comfortably exceed the paper's reported throughputs
    # (75/120/1000 Qps): every labeling function is cheap enough for the
    # weak-supervision loop. Note a deliberate deviation from the paper's
    # *ordering*: their elastic search pays a server round-trip per query,
    # while ours is an in-process index, so content search here is not the
    # slowest probe (recorded in EXPERIMENTS.md).
    assert all(v > 75 for v in qps.values())
