"""Sharded-lake benchmark: fit and query latency vs shard count.

Measures, on Pharma-1B and a ~10x synthesis-scaled lake:

* **fit latency** — monolithic ``open_lake(lake)`` vs
  ``open_lake(lake, shards=N)`` for N in {1, 2, 4}. Each shard trains its
  own embedder and builds its own index catalog, so sharding wins twice:
  the per-shard fits run concurrently on a thread pool when the host has
  cores (the PPMI training and the numpy kernels release the GIL), and the
  super-linear fit stages (PPMI SVD over the vocabulary, LSH partitioning)
  shrink with the partition even on one core.
* **query latency** — a mixed six-primitive SRQL workload, single-query
  loop and ``discover_batch``, against the same sessions (the
  scatter-gather overhead this PR's executor adds at seed scale, and
  amortises at larger ones).
* **value-operator parity** — joinable/PK-FK results (pure value
  semantics, embedder-independent) must be identical between the
  monolithic and every sharded session, mutation included. The parity
  sessions pin ``discovery_strategy="exact"``: that is the guaranteed
  contract. Under the default ``"auto"`` the comparison is not
  well-defined at 10x scale — the *monolithic* indexed path activates LSH
  banding there (sub-linear probes, bounded recall loss, paper §6.4) while
  the smaller shard-local partitions still scan fully, so the sharded
  session can return strictly better-recall candidates than the monolith
  it is compared against.

The fit-speedup gate (sharded >= 1.5x monolithic on the 10x lake) applies
only on multi-core hosts; a single-core host cannot overlap shard fits, so
there the numbers are reported honestly and the gate is skipped —
``cpu_count`` in BENCH_sharded.json records which regime produced them.

Run:  PYTHONPATH=src python benchmarks/bench_sharded.py [--smoke]

``--smoke`` (CI) shrinks the sweep to one lake, shards {1, 2}, one repeat.
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.session import open_lake
from repro.core.sharding import ShardedLakeSession
from repro.core.srql import Q
from repro.core.system import CMDLConfig
from repro.eval.benchmarks import build_benchmark
from repro.eval.reporting import format_table
from repro.lakes.synthesis import derive_unionable_tables
from repro.relational.catalog import DataLake
from repro.relational.table import Table

RESULTS_PATH = Path(__file__).parent / "results.txt"
JSON_PATH = Path(__file__).parent / "BENCH_sharded.json"

#: Multi-core acceptance floor: concurrent sharded fit vs monolithic fit
#: on the 10x lake (skipped, with an honest note, on single-core hosts).
MIN_MULTICORE_FIT_SPEEDUP = 1.5


def _config() -> CMDLConfig:
    return CMDLConfig(use_joint=False)


def _exact_config() -> CMDLConfig:
    """The parity contract's configuration (see module docstring)."""
    return CMDLConfig(use_joint=False, discovery_strategy="exact")


def _timed(fn):
    start = time.perf_counter()
    out = fn()
    return time.perf_counter() - start, out


def _scaled_lake(base: DataLake, derived_per_base: int = 9) -> DataLake:
    """Pharma-1B expanded ~10x in tables/columns via projection/selection."""
    derived, _ = derive_unionable_tables(
        base.tables, derived_per_base=derived_per_base, seed=7,
        name_prefix="scale",
    )
    lake = DataLake(name=f"{base.name}-x{derived_per_base + 1}")
    for table in base.tables:
        lake.add_table(table)
    for table in derived:
        lake.add_table(table)
    for document in base.documents:
        lake.add_document(document)
    return lake


def _workload(profile) -> list:
    tables = sorted(profile.table_columns)[:8]
    queries = [
        Q.content_search("rate change", k=5),
        Q.metadata_search("report", k=5),
        Q.cross_modal("compound formulation trial", top_n=3,
                      representation="solo"),
    ]
    for table in tables:
        queries += [
            Q.joinable(table, top_n=3),
            Q.unionable(table, top_n=3),
            Q.pkfk(table, top_n=3),
        ]
    return queries


def _value_workload(profile) -> list:
    """Embedder-independent operators only (exact parity holds under the
    default corpus-trained embedder, which differs per shard)."""
    return [
        q for table in sorted(profile.table_columns)[:8]
        for q in (Q.joinable(table, top_n=3), Q.pkfk(table, top_n=3))
    ]


def _best_fit(build, repeats: int):
    best_s, best_session = None, None
    for _ in range(repeats):
        seconds, session = _timed(build)
        if best_s is None or seconds < best_s:
            if isinstance(best_session, ShardedLakeSession):
                best_session.close()
            best_s, best_session = seconds, session
        elif isinstance(session, ShardedLakeSession):
            session.close()
        gc.collect()
    return best_s, best_session


def _bench_lake(name: str, lake: DataLake, shard_counts, repeats: int) -> dict:
    print(f"\n== {name}: {lake.num_tables} tables / {lake.num_columns} "
          f"columns / {lake.num_documents} documents ==")
    mono_s, mono = _best_fit(lambda: open_lake(lake, _config()), repeats)
    workload = _workload(mono.profile)
    value_workload = _value_workload(mono.profile)
    single_s, _ = _timed(lambda: [mono.discover(q) for q in workload])
    batch_s, _ = _timed(lambda: mono.discover_batch(workload))
    # Exact-strategy oracle for the parity columns (untimed).
    mono_exact = open_lake(lake, _exact_config())
    expected = [mono_exact.discover(q).items for q in value_workload]
    out = {
        "lake": {"tables": lake.num_tables, "columns": lake.num_columns,
                 "documents": lake.num_documents},
        "monolithic": {
            "fit_ms": round(1000 * mono_s, 1),
            "single_query_ms": round(1000 * single_s / len(workload), 3),
            "batch_ms": round(1000 * batch_s, 1),
        },
        "shards": {},
        "_value_mismatches": 0,
    }
    for count in shard_counts:
        fit_s, session = _best_fit(
            lambda: open_lake(lake, _config(), shards=count,
                              global_stats=True),
            repeats,
        )
        single_s, _ = _timed(lambda: [session.discover(q) for q in workload])
        batch_s, _ = _timed(lambda: session.discover_batch(workload))
        session.close()
        parity_session = open_lake(
            lake, _exact_config(), shards=count, global_stats=True
        )
        mismatches = sum(
            parity_session.discover(q).items != items
            for q, items in zip(value_workload, expected)
        )
        # Mutation smoke: route one add + one remove, value parity must hold.
        parity_session.add_table(Table.from_dict("bench_extra", {
            "extra_id": ["X1", "X2"], "label": ["alpha", "beta"],
        }))
        parity_session.remove("bench_extra")
        mismatches += sum(
            parity_session.discover(q).items != items
            for q, items in zip(value_workload, expected)
        )
        parity_session.close()
        out["shards"][str(count)] = {
            "fit_ms": round(1000 * fit_s, 1),
            "fit_speedup_vs_monolithic": round(mono_s / fit_s, 2),
            "single_query_ms": round(1000 * single_s / len(workload), 3),
            "batch_ms": round(1000 * batch_s, 1),
            "value_parity": f"{2 * len(value_workload) - mismatches}"
                            f"/{2 * len(value_workload)}",
        }
        out["_value_mismatches"] += mismatches
        gc.collect()
    return out


def main() -> None:
    smoke = "--smoke" in sys.argv
    cpu_count = os.cpu_count() or 1
    shard_counts = (1, 2) if smoke else (1, 2, 4)
    repeats = 1 if smoke else 2

    # Warm the interpreter so no measured fit pays one-time process costs.
    warm = build_benchmark("1B").lake
    open_lake(warm, _config())

    pharma = build_benchmark("1B").lake
    results: dict = {"cpu_count": cpu_count, "smoke": smoke}
    results["pharma_1b"] = _bench_lake(
        "Pharma-1B", pharma, shard_counts, repeats
    )
    if not smoke:
        results["pharma_10x"] = _bench_lake(
            "Pharma-1B x10", _scaled_lake(pharma), shard_counts, repeats
        )

    rows = []
    for key, label in (("pharma_1b", "Pharma-1B"), ("pharma_10x", "x10 scaled")):
        if key not in results:
            continue
        r = results[key]
        rows.append([
            label, "mono", r["monolithic"]["fit_ms"], "-",
            r["monolithic"]["single_query_ms"], r["monolithic"]["batch_ms"],
            "-",
        ])
        for count in shard_counts:
            s = r["shards"][str(count)]
            rows.append([
                "", f"shards={count}", s["fit_ms"],
                f"{s['fit_speedup_vs_monolithic']:.2f}x",
                s["single_query_ms"], s["batch_ms"], s["value_parity"],
            ])
    report = format_table(
        ["Lake", "Layout", "fit (ms)", "fit vs mono", "query (ms/q)",
         "batch (ms)", "value parity"],
        rows,
        title="Sharded lake: fit + query latency vs shard count "
              f"(host cpu_count={cpu_count})",
    )
    if cpu_count < 2:
        report += (
            "\n  NOTE: single-core host — shard fits cannot overlap, so the "
            "fit column shows the honest serial cost of N partitioned fits; "
            f"the >= {MIN_MULTICORE_FIT_SPEEDUP}x concurrent-fit gate "
            "applies on multi-core hosts only."
        )
    print("\n" + report)
    with RESULTS_PATH.open("a") as fh:
        fh.write(report + "\n\n")

    mismatches = sum(
        r.pop("_value_mismatches")
        for k, r in results.items() if isinstance(r, dict) and "shards" in r
    )
    with JSON_PATH.open("w") as fh:
        json.dump(results, fh, indent=2)
        fh.write("\n")

    assert mismatches == 0, (
        "sharded sessions diverged from the monolithic session on "
        "value-semantics operators"
    )
    if not smoke and cpu_count >= 2:
        best = max(
            s["fit_speedup_vs_monolithic"]
            for s in results["pharma_10x"]["shards"].values()
        )
        assert best >= MIN_MULTICORE_FIT_SPEEDUP, (
            f"concurrent sharded fit must reach >= "
            f"{MIN_MULTICORE_FIT_SPEEDUP}x vs the monolithic fit on the 10x "
            f"lake on a multi-core host, got {best:.2f}x"
        )
    print("\nbench_sharded: OK")


if __name__ == "__main__":
    main()
