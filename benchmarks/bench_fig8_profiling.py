"""Figure 8 — CMDL profiler overheads.

(a) structured-data profiling wall-clock versus number of column DEs
    (replicating the UK-Open tables, as the paper does, scaled down);
(b) unstructured-document profiling wall-clock versus number of documents
    (replicating the review corpus).

The assertion is the paper's claim: near-linear scaling.
"""

from __future__ import annotations

from conftest import emit
from repro.core.profiler import Profiler
from repro.eval.benchmarks import build_benchmark
from repro.eval.reporting import format_table
from repro.relational.catalog import DataLake, Document
from repro.relational.table import Column, Table
from repro.utils.timing import Timer


def _replicate_tables(lake, copies: int) -> DataLake:
    """Replicate tables with per-replica value perturbation.

    The suffix keeps each replica's vocabulary distinct; plain copies would
    hit the word-embedding cache and undersell the marginal profiling cost.
    """
    out = DataLake(name=f"{lake.name}x{copies}")
    for i in range(copies):
        suffix = "" if i == 0 else f"r{i}"
        for table in lake.tables:
            cols = [
                Column(c.name, [f"{v}{suffix}" for v in c.values])
                for c in table.columns
            ]
            out.add_table(Table(f"{table.name}__r{i}", cols))
    return out


def _replicate_documents(lake, copies: int) -> DataLake:
    out = DataLake(name=f"{lake.name}docs{copies}")
    for i in range(copies):
        marker = "" if i == 0 else f" variant r{i}{i}"
        for doc in lake.documents:
            out.add_document(Document(f"{doc.doc_id}__r{i}", doc.title,
                                      doc.text + marker, doc.source))
    return out


def _profiler():
    # A shared pre-built embedder keeps the measurements about profiling
    # work (the paper loads the fasttext model once, outside the timer).
    from repro.embed.blended import BlendedEmbedder

    return Profiler(embedding_dim=100, num_hashes=128,
                    embedder=BlendedEmbedder(dim=100, seed=0), seed=0)


def test_fig8a_structured_profiling_scaling(benchmark):
    base = build_benchmark("1A").lake

    def run():
        rows = []
        for copies in (1, 2, 4):
            lake = _replicate_tables(base, copies)
            profiler = _profiler()
            with Timer() as t:
                profiler.profile(lake)
            rows.append([lake.num_columns, round(t.elapsed, 2)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["Column DEs", "Profiling time (s)"],
        rows, title="Figure 8(a): structured profiling scaling (UK-Open replicas)",
    ))
    # Near-linear: 4x the DEs costs no more than ~7x the time (generous
    # bound covering cache effects at small scales).
    t1, t4 = rows[0][1], rows[-1][1]
    assert t4 <= max(7 * t1, t1 + 2.0)


def test_fig8b_unstructured_profiling_scaling(benchmark):
    base = build_benchmark("1C").lake

    def run():
        rows = []
        for copies in (1, 4, 8):
            lake = _replicate_documents(base, copies)
            profiler = _profiler()
            with Timer() as t:
                profiler.profile(lake)
            rows.append([lake.num_documents, round(t.elapsed, 3)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["Documents", "Profiling time (s)"],
        rows, title="Figure 8(b): unstructured profiling scaling (reviews replicas)",
    ))
    # The paper: ~10k documents in under a minute; our scaled corpus must
    # profile proportionally fast.
    docs_per_second = rows[-1][0] / max(rows[-1][1], 1e-9)
    assert docs_per_second > 150
