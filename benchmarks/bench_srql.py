"""Smoke benchmark: SRQL single-query loop vs batched execution.

Builds a deterministic 100-query mixed workload (keyword, cross-modal,
joinable, unionable, PK-FK, plus composed intersect/pipeline queries, with
the zipf-ish repetition a shared discovery service sees) over the Pharma
benchmark lake, and times

* a loop of ``engine.discover(q)`` calls (one plan + execute per query);
* one ``engine.discover_batch(workload)`` call (shared-subplan dedup,
  operator grouping, and a single PK-FK sweep per strategy).

Results must be identical; the batch path must win. The report — appended
to ``benchmarks/results.txt`` — includes the executor's reuse stats: how
many primitive evaluations the batch actually ran vs how many the query
trees requested, and how many pkfk queries shared how many sweeps.

Run:  PYTHONPATH=src python benchmarks/bench_srql.py

Intentionally NOT named ``test_*``: the tier-1 suite should not pay for a
latency sweep; correctness parity lives in tests/core/test_srql*.py.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.srql import Q
from repro.core.system import CMDL, CMDLConfig
from repro.eval.benchmarks import build_benchmark
from repro.eval.reporting import format_table

RESULTS_PATH = Path(__file__).parent / "results.txt"
WORKLOAD_SIZE = 100


def build_workload(profile) -> list:
    """100 mixed queries over a deterministic pool with repetition."""
    tables = sorted(profile.table_columns)[:8]
    docs = sorted(profile.documents)[:6]
    terms = ["enzyme inhibitor", "drug target", "synthase activity",
             "compound interaction", "protein binding"]
    pool = []
    for table in tables:
        pool.append(Q.pkfk(table, top_n=3))
        pool.append(Q.joinable(table, top_n=3))
    for table in tables[:4]:
        pool.append(Q.unionable(table, top_n=3))
    for term in terms:
        pool.append(Q.content_search(term, k=5))
        pool.append(Q.content_search(term, mode="table", k=5))
        pool.append(Q.metadata_search(term, mode="table", k=5))
    for doc in docs:
        pool.append(Q.cross_modal(doc, top_n=3, representation="solo"))
    # Composite queries: intersect and a pipelined chain.
    for table in tables[:3]:
        pool.append(Q.joinable(table, top_n=5) & Q.unionable(table, top_n=5))
    for term in terms[:3]:
        pool.append(
            Q.content_search(term, mode="table", k=5)
            .then(lambda hit: Q.pkfk(hit.split(".")[0], top_n=3))
        )
    # Deterministic zipf-ish mix: stride through the pool with repeats.
    return [pool[(i * 7) % len(pool)] for i in range(WORKLOAD_SIZE)]


def main() -> None:
    bench = build_benchmark("1B")
    engine = CMDL(CMDLConfig(use_joint=False)).fit(bench.lake)
    workload = build_workload(engine.profile)
    distinct = len(set(workload))

    # Warm code paths once (index lazies, tokenizer tables), then time both
    # modes from the same cold-sweep state.
    engine.discover(Q.joinable(sorted(engine.profile.table_columns)[0]))

    # Scope "pkfk": force cold link sweeps without also tearing down the
    # candidate generator/scorers (which would add a rebuild to the timed
    # region and skew comparison with earlier results.txt rows).
    engine.invalidate("pkfk")
    start = time.perf_counter()
    single_results = [engine.discover(q) for q in workload]
    single_s = time.perf_counter() - start

    engine.invalidate("pkfk")
    start = time.perf_counter()
    batch_results = engine.discover_batch(workload)
    batch_s = time.perf_counter() - start
    stats = engine.last_batch_stats

    mismatches = sum(
        a.items != b.items for a, b in zip(single_results, batch_results)
    )
    rows = [
        ["single discover() loop", WORKLOAD_SIZE, round(1000 * single_s, 1),
         round(WORKLOAD_SIZE / single_s, 1), "-"],
        ["discover_batch()", WORKLOAD_SIZE, round(1000 * batch_s, 1),
         round(WORKLOAD_SIZE / batch_s, 1),
         f"{single_s / batch_s:.2f}x"],
    ]
    report = format_table(
        ["Execution mode", "Queries", "Total (ms)", "Qps", "Speedup"],
        rows,
        title=(f"SRQL batch execution: {WORKLOAD_SIZE}-query mixed workload "
               f"({distinct} distinct) on Pharma (1B)"),
    )
    report += (
        f"\n  batch reuse: {stats.requested} primitive evaluations requested, "
        f"{stats.executed} executed ({stats.reused} served from shared "
        f"subplans)\n"
        f"  pkfk amortisation: {stats.pkfk_queries} pkfk queries shared "
        f"{stats.pkfk_sweeps} link sweep(s)\n"
        f"  result parity: {WORKLOAD_SIZE - mismatches}/{WORKLOAD_SIZE} "
        f"identical to the single-query loop"
    )
    print(report)
    with RESULTS_PATH.open("a") as fh:
        fh.write(report + "\n\n")

    assert mismatches == 0, "batch results diverged from single-query loop"
    assert batch_s < single_s, (
        f"discover_batch ({batch_s:.3f}s) did not beat the single-query "
        f"loop ({single_s:.3f}s)"
    )


if __name__ == "__main__":
    main()
