"""Figure 11 — End-to-end study of a discovery pipeline.

Runs the five-operation pipeline of the motivation example (Figure 1) on
the Pharma lake with K=3 through the SRQL query layer (each operation a
declarative ``Q`` query handed to ``engine.discover``), measuring
per-operation system latency, and reports it next to simulated analyst
investigation times (the paper's domain experts are not available; their
measured think-times from Figure 11 are used as fixed constants, which
preserves the figure's point: system time is milliseconds, human time is
minutes). A final row runs the Q1->Q2->Q4 chain as ONE pipelined SRQL
query — the declarative form of the same workflow.
"""

from __future__ import annotations

from conftest import emit
from repro.core.srql import Q
from repro.eval.reporting import format_table
from repro.utils.timing import Timer

#: Analyst investigation minutes from the paper's Figure 11 (K=3).
ANALYST_MINUTES = {
    "Op1 keyword search": 4.6,
    "Op2 Doc2Table": 1.7,
    "Op3 Doc2Table": 7.8,
    "Op4 TableJTable": 5.3,
    "Op5 TableUTable": 8.5,
}

K = 3


def test_fig11_pipeline_latencies(benchmark, pharma_cmdl):
    engine = pharma_cmdl.engine

    def run_pipeline():
        timings = {}
        with Timer() as t1:
            r1 = engine.discover(Q.content_search("thymidylate synthase", k=K))
        timings["Op1 keyword search"] = t1.elapsed
        assert len(r1) > 0

        with Timer() as t2:
            r2 = engine.discover(Q.cross_modal(r1[1], top_n=K))
        timings["Op2 Doc2Table"] = t2.elapsed

        with Timer() as t3:
            r3 = engine.discover(Q.cross_modal(r1[min(2, len(r1))], top_n=K))
        timings["Op3 Doc2Table"] = t3.elapsed

        source_table = r3[1] if len(r3) else r2[1]
        with Timer() as t4:
            r4 = engine.discover(Q.pkfk(source_table, top_n=K))
        timings["Op4 TableJTable"] = t4.elapsed

        union_source = r4[1] if len(r4) else source_table
        with Timer() as t5:
            engine.discover(Q.unionable(union_source, top_n=K))
        timings["Op5 TableUTable"] = t5.elapsed
        return timings

    timings = benchmark.pedantic(run_pipeline, rounds=3, iterations=1)
    rows = []
    cumulative = 0.0
    for op, seconds in timings.items():
        cumulative += seconds
        rows.append([
            op, round(1000 * seconds, 1), round(1000 * cumulative, 1),
            ANALYST_MINUTES[op],
        ])

    # The chain as one declarative pipelined query (Q1 -> Q2 -> Q4).
    chained = (Q.content_search("thymidylate synthase", k=K)
                 .cross_modal(top_n=K)
                 .pkfk(top_n=K))
    with Timer() as tc:
        engine.discover(chained)
    rows.append(["Q1->Q2->Q4 as one SRQL query", round(1000 * tc.elapsed, 1),
                 "-", "-"])

    emit(format_table(
        ["Operation", "System (ms)", "Cumulative (ms)",
         "Analyst (min, from paper)"],
        rows,
        title=f"Figure 11: end-to-end discovery pipeline (K={K}, via SRQL)",
        float_digits=1,
    ))
    # The paper's headline: system time is milliseconds-scale and dwarfed
    # by analyst time. The union op is the most expensive system op.
    total_ms = 1000 * cumulative
    assert total_ms < 60_000
    union_ms = rows[-2][1]
    assert union_ms >= max(r[1] for r in rows[1:3])  # union >= doc2table ops
