"""Table 3 — Evaluation of syntactic join discovery (R-precision).

Aurum (Jaccard similarity), D3L (multi-signal), and CMDL (Jaccard set
containment) on Benchmarks 2A, 2B, and 2C (SS/MS/LS). k is set to the
ground-truth size per query, making precision = recall ("R-Precision").
"""

from __future__ import annotations

import time

from conftest import emit, uniqueness_of
from repro.baselines import AurumBaseline, D3LBaseline
from repro.core.joinability import JoinDiscovery
from repro.core.profiler import Profiler
from repro.eval.benchmarks import build_benchmark
from repro.eval.reporting import format_table
from repro.eval.runner import evaluate_join

MAX_QUERIES = 40


def _score_all(bench, cmdl):
    """Aurum / D3L (profile-level baselines) and CMDL via the fitted
    engine's default indexed join-discovery path."""
    profile = cmdl.profile
    uniq = uniqueness_of(bench.lake)
    jd = cmdl.engine.join_discovery
    aurum = AurumBaseline(profile, uniq)
    d3l = D3LBaseline(profile)
    return [
        evaluate_join(lambda c, k: aurum.joinable_columns(c, k=k), bench,
                      max_queries=MAX_QUERIES),
        evaluate_join(lambda c, k: d3l.joinable_columns(c, k=k), bench,
                      max_queries=MAX_QUERIES),
        evaluate_join(lambda c, k: jd.joinable_columns(c, k=k), bench,
                      max_queries=MAX_QUERIES),
    ]


def test_table3_syntactic_join(benchmark, pharma_cmdl, ukopen_cmdl,
                               mlopen_cmdl, bench_1a, bench_1b, bench_1c):
    cases = [
        ("2A", "Govt. data", build_benchmark("2A"), ukopen_cmdl),
        ("2B", "DrugBank", build_benchmark("2B"), pharma_cmdl),
        ("2C", "SS", build_benchmark("2C-SS"), mlopen_cmdl),
        ("2C", "MS", build_benchmark("2C-MS"), mlopen_cmdl),
        ("2C", "LS", build_benchmark("2C-LS"), mlopen_cmdl),
    ]

    def run():
        rows = []
        for bench_id, workload, bench, cmdl in cases:
            aurum, d3l, cmdl_score = _score_all(bench, cmdl)
            rows.append([bench_id, workload, round(aurum, 2), round(d3l, 2),
                         round(cmdl_score, 2)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        ["Benchmark", "Workload", "Aurum", "D3L", "CMDL"],
        rows, title="Table 3: Syntactic join discovery (Precision = Recall)",
    ))

    by_case = {(r[0], r[1]): r for r in rows}
    # Shape checks from the paper: CMDL wins clearly on the skewed
    # benchmarks (2B, 2C-LS); everyone is mediocre on manually-annotated 2A.
    assert by_case[("2B", "DrugBank")][4] > by_case[("2B", "DrugBank")][2]
    assert by_case[("2C", "LS")][4] >= by_case[("2C", "LS")][2]
    assert by_case[("2A", "Govt. data")][4] < 0.7


def test_table3_indexed_vs_exact(ukopen_cmdl, bench_1a):
    """Candidate-layer check on the largest seed lake (UK-Open): the indexed
    strategy must match the exact oracle's R-precision and cut latency."""
    bench = build_benchmark("2A")
    profile = ukopen_cmdl.profile
    indexed = ukopen_cmdl.engine.join_discovery
    exact = JoinDiscovery(profile)
    assert indexed.strategy == "indexed" and exact.strategy == "exact"

    quality = {}
    latency = {}
    for label, jd in (("exact", exact), ("indexed", indexed)):
        start = time.perf_counter()
        quality[label] = evaluate_join(
            lambda c, k: jd.joinable_columns(c, k=k), bench,
            max_queries=MAX_QUERIES,
        )
        latency[label] = 1000.0 * (time.perf_counter() - start) / MAX_QUERIES

    emit(format_table(
        ["Strategy", "R-Precision (2A)", "ms/query"],
        [[label, round(quality[label], 3), round(latency[label], 2)]
         for label in ("exact", "indexed")],
        title="Table 3 addendum: indexed vs exact join discovery",
    ))
    # Quality parity is the hard guarantee; latency is emitted for the
    # record but not asserted (wall-clock comparisons flake under load).
    assert quality["indexed"] == quality["exact"]
