"""Sharded lake sessions: partitioned fit, routed mutations, scatter-gather.

One monolithic fit bounds the lake a single process can serve: profiling,
index memory, and query latency all grow with the whole lake.
``repro.open_lake(lake, shards=N)`` partitions the lake into N shards that
are fitted independently (concurrently, on multi-core hosts) and served
behind the same session surface:

    session = open_lake(lake, shards=4)         # N partitioned fits
    session.discover(Q.joinable("drugs"))       # scatter-gather merge
    session.add_table(table)                    # routed to ONE shard
    session.rebalance({"drugs": 2})             # move entries between shards
    session.shards[0].refresh()                 # each shard on its own clock

``global_stats=True`` additionally merges BM25/df corpus statistics across
shards, which makes keyword scores — and therefore every top-k — byte-equal
to a monolithic fit (the trade-off: document churn that shifts the
corpus-wide df filter re-syncs drifted sibling documents).

Run:  python examples/sharded_lake.py
"""

from __future__ import annotations

import time

from repro import CMDLConfig, Q, Table, generate_pharma_lake, open_lake


def show(title: str, drs) -> None:
    print(f"\n{title}")
    for rank, (item, score) in enumerate(drs, start=1):
        print(f"  {rank}. {item}  (score {score:.3f})")


def main() -> None:
    print("Generating the Pharma lake ...")
    lake = generate_pharma_lake().lake
    print(f"  {lake!r}")

    print("\nOpening a 4-shard session (global corpus statistics) ...")
    start = time.perf_counter()
    session = open_lake(
        lake, CMDLConfig(use_joint=False), shards=4, global_stats=True
    )
    print(f"  fitted {session.num_shards} shards in "
          f"{time.perf_counter() - start:.1f}s")
    for i, shard in enumerate(session.shards):
        print(f"  shard {i}: {shard.lake.num_tables} tables, "
              f"{shard.lake.num_documents} documents")

    # 1. Queries scatter across shards and merge into one global top-k.
    show("Tables joinable with 'drugs' (scatter-gather)",
         session.discover(Q.joinable("drugs", top_n=3)))
    show("Keyword search (BM25 over merged corpus statistics)",
         session.discover(Q.content_search("enzyme inhibitor", k=3)))

    stats = session.last_batch_stats
    print(f"\n  per-shard generations: {stats.shard_generations}")
    print("  per-shard seconds:",
          {i: f"{s * 1000:.1f}ms" for i, s in stats.shard_seconds.items()})

    # 2. A mutation routes to exactly one shard; siblings never re-index.
    trials = Table.from_dict("clinical_trials", {
        "trial_id": [f"CT{i:04d}" for i in range(30)],
        "drug_name": [lake.table("drugs").column("name").values[i % 15]
                      for i in range(30)],
    })
    owner = session.shard_of("clinical_trials")
    before = session.generations
    session.add_table(trials)
    print(f"\nAdded 'clinical_trials' -> shard {owner} "
          f"(generations {before} -> {session.generations})")
    show("Joinable with 'clinical_trials' (sees the new table)",
         session.discover(Q.joinable("clinical_trials", top_n=3)))

    # 3. Rebalance: pin the hot table onto a different shard.
    target = (owner + 1) % session.num_shards
    moved = session.rebalance({"clinical_trials": target})
    print(f"\nRebalanced {moved} entry -> shard {target}; "
          f"results are unchanged:")
    show("Joinable with 'clinical_trials' (after rebalance)",
         session.discover(Q.joinable("clinical_trials", top_n=3)))

    # 4. Embedding drift is tracked lake-wide; each shard refreshes itself
    #    once its own drift crosses the (optional) auto-refresh threshold.
    print(f"\nEmbedding drift after churn: {session.drift():.3f} "
          "(OOV rate of post-fit DEs vs the fit vocabulary)")
    session.close()


if __name__ == "__main__":
    main()
