"""ML data augmentation: find join/union candidates for a training table.

The ML-Open scenario from the paper's evaluation: a practitioner holds one
dataset (say, a movies table) and wants more features (joinable tables) or
more rows (unionable tables) from an open-data lake, plus any text reviews
discussing the same entities. This example runs all three expansions and
prints the Enterprise Knowledge Graph's view of the neighbourhood.

Run:  python examples/ml_dataset_augmentation.py
"""

from __future__ import annotations

from repro import CMDL, CMDLConfig, Q, generate_mlopen_lake
from repro.core.ekg import EKGBuilder


def main() -> None:
    print("Generating the ML-Open lake ...")
    generated = generate_mlopen_lake()
    lake = generated.lake
    print(f"  {lake!r}")

    cmdl = CMDL(CMDLConfig(sample_fraction=0.3, max_epochs=60))
    engine = cmdl.fit(lake)

    seed_table = generated.tables_in("ms")[0]
    print(f"\nAugmenting training table: '{seed_table}'")
    print("  columns:", lake.table(seed_table).column_names)

    # Both expansions in one batched SRQL workload: the executor plans and
    # runs them together (shared subplans are deduplicated automatically).
    joins, unions = engine.discover_batch([
        Q.joinable(seed_table, top_n=4),
        Q.unionable(seed_table, top_n=4),
    ])
    print("\nJoinable tables (feature augmentation):")
    for table, score in joins:
        print(f"  {table}  ({score:.3f})")

    print("\nUnionable tables (row augmentation):")
    for table, score in unions:
        print(f"  {table}  ({score:.3f})")

    # Reviews mentioning entities of this table's theme (reverse
    # cross-modal: here we scan review docs by their joint relatedness to
    # the table's key column).
    key_column = f"{seed_table}.{lake.table(seed_table).column_names[0]}"
    sketch = engine.profile.columns[key_column]
    print(f"\nReview documents semantically near column '{key_column}':")
    if engine.indexes.doc_joint is not None:
        query = engine.joint_model.embed(sketch.encoding[None, :])[0]
        for doc_id, score in engine.indexes.doc_joint.query(query, k=3):
            title = lake.document(doc_id).title
            print(f"  {doc_id}  ({score:.3f})  {title}")

    # Materialise the local EKG and show the seed table's neighbourhood.
    print("\nBuilding the EKG (joins + unions around all tables) ...")
    builder = EKGBuilder(engine.profile, top_k=3, threshold=0.5)
    ekg = builder.build(
        join_discovery=engine.join_discovery,
        pkfk_links=engine.pkfk_links(),  # the engine's cached sweep
        union_discovery=None,  # union edges are expensive; omitted here
    )
    print(f"  EKG: {ekg.num_nodes} nodes, {ekg.num_edges} edges")
    print(f"  neighbourhood of '{seed_table}':")
    for neighbor, rel_type, weight in ekg.neighbors(seed_table)[:5]:
        print(f"    {rel_type:22s} -> {neighbor}  ({weight:.2f})")


if __name__ == "__main__":
    main()
