"""Bring your own lake + extend the labeling framework.

Demonstrates the two extension points a downstream adopter needs:

1. Building a :class:`~repro.relational.catalog.DataLake` from raw CSV
   payloads and documents (no generator involved).
2. Plugging a *custom labeling function* into the weak-supervision stage —
   here a lexicon-based relatedness check, standing in for the LLM-based
   labeling functions the paper describes as future extensions (§4.1).
3. Supplying a tiny gold-label set so weak labeling functions get switched
   off automatically.

Run:  python examples/custom_lake_weak_supervision.py
"""

from __future__ import annotations

from repro import CMDL, CMDLConfig, DataLake, Document, Q
from repro.relational.csvio import table_from_csv
from repro.weaklabel.lf import LabelingFunction

MOVIES_CSV = """title,director,year,rating
Solaris Run,R. Velez,2019,7.9
Glass Harbor,M. Ito,2021,8.3
Night Cartography,A. Boateng,2018,7.1
Paper Lanterns,S. Novak,2020,6.8
The Quiet Divide,R. Velez,2022,8.0
"""

ACTORS_CSV = """actor,film,role
J. Mercer,Solaris Run,lead
P. Andersson,Glass Harbor,lead
L. Okafor,Night Cartography,support
J. Mercer,The Quiet Divide,lead
D. Farkas,Paper Lanterns,support
"""

CITIES_CSV = """city,country,population
Lisbon,Portugal,545000
Porto,Portugal,232000
Seville,Spain,688000
"""

REVIEWS = [
    ("rev:1", "Solaris Run review",
     "Solaris Run is a patient, gorgeous film. J. Mercer anchors every "
     "scene and the score never overreaches."),
    ("rev:2", "Glass Harbor notes",
     "Glass Harbor earns its rating: Ito frames the harbor like a memory. "
     "P. Andersson gives the performance of the year."),
    ("rev:3", "Travel diary",
     "Lisbon in spring: the population of tourists doubles, and Porto is "
     "only a train ride away."),
]

#: The custom LF's domain knowledge: film-related vocabulary.
FILM_LEXICON = {"film", "score", "scene", "rating", "performance", "lead",
                "role", "director"}


def main() -> None:
    lake = DataLake(name="film-lake")
    lake.add_table(table_from_csv("movies", MOVIES_CSV))
    lake.add_table(table_from_csv("actors", ACTORS_CSV))
    lake.add_table(table_from_csv("cities", CITIES_CSV))
    for doc_id, title, text in REVIEWS:
        lake.add_document(Document(doc_id, title, text))
    print(f"Custom lake: {lake!r}")

    # A lexicon LF: vote "related" when the document is film-themed and the
    # column belongs to a film table. Any callable with this signature plugs
    # in — an LLM prompt would go here.
    documents = {d.doc_id: d.text.lower() for d in lake.documents}

    def film_affinity(pair: tuple[str, str]) -> int:
        doc_id, column_id = pair
        doc_is_film = sum(w in documents[doc_id] for w in FILM_LEXICON) >= 2
        col_is_film = column_id.split(".")[0] in ("movies", "actors")
        return 1 if (doc_is_film and col_is_film) else 0

    config = CMDLConfig(
        sample_fraction=1.0,  # the lake is tiny; label everything
        top_k_probe=3,
        max_epochs=40,
        extra_labeling_functions=[LabelingFunction("film_lexicon",
                                                   film_affinity)],
    )
    cmdl = CMDL(config)

    # A 4-pair gold set — enough for the LF-pruning phase to measure the
    # labeling functions.
    gold = [
        ("rev:1", "movies.title", 1),
        ("rev:1", "cities.city", 0),
        ("rev:3", "cities.city", 1),
        ("rev:3", "movies.title", 0),
    ]
    engine = cmdl.fit(lake, gold_pairs=gold)

    report = cmdl.labeling_report
    print("\nLabeling-function accuracies on the gold set:")
    for name, acc in sorted(report.lf_accuracies.items()):
        state = "disabled" if name in report.disabled_lfs else "kept"
        print(f"  {name:18s} {acc:.2f}  [{state}]")

    # Discovery through the SRQL layer: one batched workload for all three
    # questions (identical results to the per-operator engine calls).
    glass, travel, joins = engine.discover_batch([
        Q.cross_modal("rev:2", top_n=3),
        Q.cross_modal("rev:3", top_n=3),
        Q.joinable("movies", top_n=2),
    ])
    print("\nTables related to the Glass Harbor review:")
    for table, score in glass:
        print(f"  {table}  ({score:.3f})")

    print("\nTables related to the travel diary:")
    for table, score in travel:
        print(f"  {table}  ({score:.3f})")

    print("\nTables joinable with 'movies':")
    for table, score in joins:
        print(f"  {table}  ({score:.3f})")


if __name__ == "__main__":
    main()
