"""Serving a lake: concurrent readers, a live writer, zero torn reads.

A session interleaves mutation and discovery in one thread; a
``LakeServer`` splits the roles so many reader threads query while one
writer path mutates:

    server = session.serve()                     # thread backend
    server = session.serve(backend="process")    # one process per shard

* **snapshot reads** — a query pins the per-shard generation vector
  under a reader/writer lock and completes against exactly that
  snapshot, even while mutations queue behind it;
* **plan-level result cache** — per-shard partials are keyed by
  ``(plan node, generation scope)``, so a mutation on one shard leaves
  every other shard's cached partials warm;
* **process backend** — ``serve(backend="process")`` hands a *saved*
  catalog to one worker process per shard (booted via the cheap
  catalog-reopen path); the server becomes the catalog's sole writer
  and mutations are write-ahead journaled exactly like a session's;
* **fault tolerance** — a killed/hung worker is respawned inside the
  first read that needs it (catalog reopen + journal-tail replay back
  to the exact pre-crash generation), reads retry transparently, and a
  shard down past its retry budget either fails the query
  (``degraded="fail"``) or returns partial results with the gap
  reported in ``stats.degraded_shards`` (``degraded="partial"``).

Run:  python examples/serving_lake.py
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from pathlib import Path

from repro import CMDLConfig, Q, Table, generate_pharma_lake, open_lake


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="serving-lake-"))
    try:
        print("Generating + fitting the Pharma lake (2 shards) ...")
        lake = generate_pharma_lake().lake
        session = open_lake(lake, CMDLConfig(use_joint=False),
                            shards=2, global_stats=True)

        # ---- thread backend: serve the live session --------------------
        server = session.serve()
        print(f"\n{server!r}")

        queries = [
            Q.content_search("thymidylate synthase", k=3),
            Q.joinable("drugs", top_n=3),
            Q.unionable("atc_codes", top_n=3),
        ]
        counts = {"reads": 0}
        stop = threading.Event()

        def reader() -> None:
            i = 0
            while not stop.is_set():
                server.discover(queries[i % len(queries)])
                counts["reads"] += 1
                i += 1

        # Readers hammer the server while the writer churns tables: every
        # read completes against the generation snapshot it planned under.
        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        for i in range(10):
            server.add_table(Table.from_dict(f"live_batch_{i}", {
                "batch_id": [f"B{i}0", f"B{i}1"],
                "status": ["open", "closed"],
            }))
            time.sleep(0.02)
        time.sleep(0.2)
        stop.set()
        for t in threads:
            t.join()
        stats = server.last_stats
        print(f"  {counts['reads']} reads concurrent with 10 mutations; "
              f"generations now {server.generations}")
        print(f"  last batch: cache_hits={stats.cache_hits} "
              f"cache_misses={stats.cache_misses} "
              f"round_trips={dict(stats.shard_round_trips)}")
        server.close()       # the session is still ours
        result = session.discover(Q.joinable("drugs", top_n=3))
        print(f"  session survives the server: joinable('drugs') -> "
              f"{[t for t, _ in result]}")

        # ---- process backend: save, then serve the catalog -------------
        print("\nHanding the catalog to per-shard worker processes ...")
        session.save(workdir / "pharma.catalog")
        server = session.serve(backend="process")   # closes the session
        print(f"  {server!r}")
        warm = server.discover_batch(queries)
        again = server.discover_batch(queries)
        assert [r.items for r in warm] == [r.items for r in again]
        print(f"  repeat batch served from cache: "
              f"hits={server.last_stats.cache_hits}, "
              f"round_trips={dict(server.last_stats.shard_round_trips)}")
        # ---- fault tolerance: kill a worker, keep serving --------------
        print("\nKilling shard 0's worker process mid-serve ...")
        victim = server.backend.workers[0]
        victim.proc.kill()
        victim.proc.wait()
        # Recovery is lazy: the next read that misses the cache and needs
        # shard 0 respawns it (catalog reopen + journal replay) and then
        # retries itself — the caller just sees a slower-than-usual query.
        # (A cached query would not even notice: partials for dead shards
        # keep serving from the result cache until a mutation bumps them.)
        result = server.discover(Q.content_search("protein kinase", k=3))
        stats = server.last_stats
        print(f"  fresh query served anyway: {result.ids()}")
        print(f"  stats: respawns={stats.respawns} retries={stats.retries} "
              f"(crashes past max_respawns trip a per-shard circuit "
              f"breaker; server.reset_shard(i) re-arms it, and "
              f"degraded='partial' trades failure for partial top-k)")

        server.add_table(Table.from_dict("served_extra", {
            "extra_id": ["X1"], "note": ["added through the server"],
        }))
        server.checkpoint()  # fold journals into the shard files
        server.close()

        # The served catalog is a normal catalog: reopen it anywhere.
        reopened = open_lake(workdir / "pharma.catalog")
        assert "served_extra" in reopened.table_names
        print("  catalog reopens in-process with the served mutations: "
              f"generation {reopened.generation}")
        reopened.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
