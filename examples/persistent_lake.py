"""Persistent catalogs: fit once, save, kill the process, reopen, query.

A fitted session is expensive (profiling, embedding, index builds) but its
state is just data — so ``session.save(path)`` writes it to a durable
on-disk catalog (one SQLite file per shard, WAL-mode), and
``repro.open_lake(path)`` rebuilds the *exact* session later without
re-profiling a single table:

    session = open_lake(lake)                   # fit once
    session.save("pharma.catalog")              # durable catalog
    ...process exits...
    session = open_lake("pharma.catalog")       # reopen: no refit

Mutations on a bound session append to a write-ahead journal *before*
they run, so even a crash (or a close without save) loses nothing — the
next open replays the journal through the same mutators and lands on the
exact generation. ``save()`` on a bound session is an incremental
checkpoint: dirty tracking rewrites only the rows and index sections the
mutations actually touched.

Run:  python examples/persistent_lake.py
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

from repro import CMDL, CMDLConfig, Q, Table, generate_pharma_lake, open_lake


def timed(label: str, fn):
    start = time.perf_counter()
    out = fn()
    print(f"  {label}: {1000 * (time.perf_counter() - start):.0f} ms")
    return out


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="persistent-lake-"))
    catalog = workdir / "pharma.catalog"
    try:
        print("Generating the Pharma lake ...")
        lake = generate_pharma_lake().lake

        # ---- fit once, save, drop the session --------------------------
        print("\nFit, save, close:")
        session = timed("cold fit (profile + embed + index)",
                        lambda: open_lake(lake, CMDLConfig(use_joint=False)))
        timed("save (full catalog write)", lambda: session.save(catalog))
        print(f"  catalog: {sorted(p.name for p in catalog.iterdir())}")
        baseline = session.discover(Q.joinable("drugs", top_n=3))
        session.close()
        del session  # nothing of the fit survives in memory

        # ---- reopen: no refit ------------------------------------------
        print("\nReopen from disk:")
        session = timed("open_lake(catalog)", lambda: open_lake(catalog))
        reopened = session.discover(Q.joinable("drugs", top_n=3))
        assert reopened.items == baseline.items
        print(f"  joinable('drugs') identical to the saved session: "
              f"{[item for item, _ in reopened]}")

        # ---- mutate, crash, replay -------------------------------------
        print("\nMutate, then close WITHOUT saving (simulated crash):")
        session.add_table(Table.from_dict("trial_sites", {
            "site_id": ["S1", "S2", "S3"],
            "city": ["london", "berlin", "madrid"],
        }))
        print(f"  journaled ops pending: {session._store.pending_journal()}")
        session._store.close()  # no checkpoint — the journal has the op
        session._store = None

        session = timed("reopen (replays the journal)",
                        lambda: open_lake(catalog))
        assert "trial_sites" in session.lake.table_names
        print(f"  'trial_sites' survived: generation {session.generation}, "
              f"{session._store.pending_journal()} ops pending")

        # ---- incremental checkpoint ------------------------------------
        print("\nCheckpoint (dirty-tracked delta write):")
        timed("save (only touched rows/sections)", lambda: session.save())
        print(f"  journal drained: {session._store.pending_journal()} pending")
        session.close()

        # CMDL.load is the same reopen, classmethod-style; sharded
        # sessions (open_lake(lake, shards=N)) save and reopen through the
        # identical surface — one shard-NNNN.sqlite file per shard.
        session = CMDL.load(catalog)
        assert "trial_sites" in session.lake.table_names
        session.close()
        print("\nCMDL.load(catalog) works too — same catalog, same state.")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
