"""Mutable lake sessions: open, query, add, re-query, remove — no refits.

Real lakes churn: tables land, files are deleted, schemas drift. Instead of
refitting CMDL from scratch on every change (``CMDL.fit`` re-profiles and
re-indexes the whole lake), ``repro.open_lake`` returns a
:class:`~repro.core.session.LakeSession` whose mutators maintain the
profile and every index incrementally:

    session = open_lake(lake)                   # fit once
    session.discover(...)                       # query
    session.add_table(table)                    # delta-sketch + delta-index
    session.discover(...)                       # sees the new table
    session.remove("old_table")                 # tombstone + lazy rebuilds
    session.update_table(replacement)           # remove + add, one commit
    session.refresh()                           # full refit (retrains
                                                # embedder + joint model)

Every mutation bumps the engine's cache generation, so no query — including
memoised SRQL batches — can ever serve results computed against a previous
lake state.

Run:  python examples/incremental_lake.py
"""

from __future__ import annotations

import time

from repro import CMDLConfig, Q, Table, Document, generate_pharma_lake, open_lake


def show(title: str, drs) -> None:
    print(f"\n{title}  [generation {SESSION.generation}]")
    for rank, (item, score) in enumerate(drs, start=1):
        print(f"  {rank}. {item}  (score {score:.3f})")


SESSION = None


def main() -> None:
    global SESSION
    print("Generating the Pharma lake ...")
    lake = generate_pharma_lake().lake
    print(f"  {lake!r}")

    print("\nOpening a mutable session (one fit; no joint model for speed) ...")
    start = time.perf_counter()
    SESSION = open_lake(lake, CMDLConfig(use_joint=False))
    print(f"  fitted in {time.perf_counter() - start:.1f}s")

    # 1. Query the lake as opened.
    show("Tables joinable with 'drugs'",
         SESSION.discover(Q.joinable("drugs", top_n=3)))

    # 2. A new table lands in the lake: one delta-profile + index insert.
    trials = Table.from_dict("clinical_trials", {
        "trial_id": [f"CT{i:04d}" for i in range(40)],
        "drug_name": [lake.table("drugs").column("name").values[i % 20]
                      for i in range(40)],
        "phase": [str(1 + i % 4) for i in range(40)],
    })
    start = time.perf_counter()
    SESSION.add_table(trials)
    print(f"\nadd_table('clinical_trials') absorbed in "
          f"{1000 * (time.perf_counter() - start):.1f} ms (no refit)")

    # 3. Re-query: the new table participates immediately.
    show("Tables joinable with 'clinical_trials'",
         SESSION.discover(Q.joinable("clinical_trials", top_n=3)))

    # 4. Documents too — corpus statistics stay exact.
    SESSION.add_document(Document(
        doc_id="doc:ct-note",
        title="Phase trial outcomes",
        text="The trial measured inhibitor response across phases.",
    ))
    show("Documents matching 'trial outcomes'",
         SESSION.discover(Q.content_search("trial outcomes", k=3)))

    # 5. Remove the table again; queries can no longer reach it, and cached
    #    PK-FK sweeps referencing it were invalidated with everything else.
    SESSION.remove("clinical_trials")
    print(f"\nremoved 'clinical_trials'; session at generation "
          f"{SESSION.generation} after {SESSION.mutations} mutations")
    try:
        SESSION.discover(Q.joinable("clinical_trials", top_n=3))
    except ValueError as exc:
        print(f"  querying it now fails fast: {exc}")

    # 6. refresh() = full cold-fit equivalence (embedder/joint retrained).
    #    Worth it after heavy churn; everything above needed no refit.
    print("\nsession.refresh() would refit everything; "
          "mutations since open ran without it.")


if __name__ == "__main__":
    main()
