"""Government open-data scenario: semantic discovery vs keyword search.

The UK-Open lake's documents talk about metrics by *synonym* ("residents"
instead of "population") and use inflected topic vocabulary, so keyword
search misses most of each document's related tables. This example shows
CMDL's cross-modal search finding the full table family where BM25 stalls,
then uses unionability to expand a family — the workflow a data journalist
would run on open-data portals.

Run:  python examples/govt_open_data.py
"""

from __future__ import annotations

from repro import CMDL, CMDLConfig, Q, generate_ukopen_lake
from repro.baselines import CMDLDocToTable, ElasticSearchBaseline
from repro.eval.metrics import recall_at_k


def main() -> None:
    print("Generating the UK-Open lake ...")
    generated = generate_ukopen_lake()
    lake = generated.lake
    print(f"  {lake!r}")

    cmdl = CMDL(CMDLConfig(sample_fraction=0.3, max_epochs=80))
    engine = cmdl.fit(lake)

    gt = generated.ground_truth("doc_to_table")
    doc_id = gt.queries[0]
    doc = lake.document(doc_id)
    print(f"\nQuery document: {doc_id}")
    print(f"  title: {doc.title}")
    print(f"  text:  {doc.text[:120]}...")
    relevant = gt.relevant(doc_id)
    print(f"  true table family ({len(relevant)}): {sorted(relevant)}")

    print("\nCMDL cross-modal search (solo embeddings):")
    cmdl_hits = engine.discover(
        Q.cross_modal(doc_id, top_n=8, representation="solo"))
    for table, score in cmdl_hits:
        marker = "*" if table in relevant else " "
        print(f"  {marker} {table}  ({score:.3f})")

    print("\nBM25 keyword baseline:")
    bm25 = ElasticSearchBaseline(engine.profile, "bm25")
    bm25_hits = bm25.rank_tables(doc_id, k=8)
    for table, score in bm25_hits:
        marker = "*" if table in relevant else " "
        print(f"  {marker} {table}  ({score:.3f})")

    # One document is anecdote; averaged over queries the keyword method's
    # recall ceiling shows (paper §6.1: elastic recall "always very low").
    cmdl_method = CMDLDocToTable(engine, "solo")
    cmdl_recalls, bm25_recalls = [], []
    for q in gt.queries[:25]:
        rel = gt.relevant(q)
        cmdl_recalls.append(
            recall_at_k([t for t, _ in cmdl_method.rank_tables(q, 15)], rel, 15))
        bm25_recalls.append(
            recall_at_k([t for t, _ in bm25.rank_tables(q, 15)], rel, 15))
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    print(f"\nmean recall@15 over 25 documents: "
          f"CMDL {mean(cmdl_recalls):.2f} vs BM25 {mean(bm25_recalls):.2f}")

    # Expand a discovered table into its unionable family (Q5-style).
    seed_table = next(iter(sorted(relevant)))
    union = engine.discover(Q.unionable(seed_table, top_n=5))
    print(f"\nTables unionable with '{seed_table}':")
    for table, score in union:
        marker = "*" if table in gt.relevant(doc_id) else " "
        print(f"  {marker} {table}  ({score:.3f})")


if __name__ == "__main__":
    main()
