"""Quickstart: the Figure-1 discovery pipeline on the Pharma lake, in SRQL.

Builds the synthetic Pharma data lake (DrugBank/ChEMBL/ChEBI tables +
PubMed-style abstracts), fits the full CMDL stack (profiling, indexing,
weak-supervised labeling, joint representation training), and walks the
five-question discovery chain from the paper's motivation example — each
question a declarative ``Q`` query handed to ``engine.discover``:

    Q1  keyword search for documents about an enzyme;
    Q2  cross-modal search: tables related to a returned document;
    Q3  cross-modal search from another document;
    Q4  PK-FK joinable tables for a discovered table;
    Q5  unionable tables for a joinable table.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CMDL, CMDLConfig, Q, generate_pharma_lake


def show(title: str, drs) -> None:
    print(f"\n{title}  [{drs.operation}]")
    for rank, (item, score) in enumerate(drs, start=1):
        print(f"  {rank}. {item}  (score {score:.3f})")


def main() -> None:
    print("Generating the Pharma lake ...")
    generated = generate_pharma_lake()
    lake = generated.lake
    print(f"  {lake!r}")

    print("\nFitting CMDL (profile -> index -> weak labels -> joint model) ...")
    cmdl = CMDL(CMDLConfig(sample_fraction=0.3, max_epochs=80))
    engine = cmdl.fit(lake)
    report = cmdl.labeling_report
    training = cmdl.training_result
    print(f"  labeled pairs: {report.candidate_pairs} "
          f"({report.positive_pairs} with positive votes)")
    print(f"  joint model: {training.epochs} epochs, "
          f"{training.seconds:.1f}s, error {training.error_percent:.1f}%")
    # Every fit records a wall-clock breakdown of its batched stages
    # (bag building / sketching / embedding / index build / training),
    # plus a per-structure split of the index stage and a per-kernel
    # split of the embed stage, so a slow fit is attributable to one
    # structure or kernel sub-stage. CMDLConfig(fit_workers=N) warms the
    # embed caches in parallel — fit_embed_backend="process" forks real
    # worker processes on multi-core hosts — with byte-identical output
    # at any worker count on either backend; non-fatal degradations
    # (e.g. process falling back to threads) land in fit_stats.warnings.
    print(f"  fit stages: {cmdl.fit_stats.summary()}")
    breakdown = cmdl.fit_stats.index_breakdown
    print("  index stage by structure: "
          + " ".join(f"{k}={v * 1000:.0f}ms"
                     for k, v in sorted(breakdown.items(), key=lambda kv: -kv[1])))
    embed = cmdl.fit_stats.embed_breakdown
    print("  embed stage by kernel: "
          + " ".join(f"{k}={v * 1000:.0f}ms" for k, v in embed.items()))
    for note in cmdl.fit_stats.warnings:
        print(f"  fit warning: {note}")

    # Each discovery step is a declarative query; engine.discover plans it
    # (validation + indexed/exact strategy choice) and executes it.
    r1 = engine.discover(Q.content_search("thymidylate synthase", k=3))
    show("Q1: documents about 'thymidylate synthase'", r1)

    r2 = engine.discover(Q.cross_modal(r1[1], top_n=3))
    show(f"Q2: tables related to document {r1[1]}", r2)

    r3 = engine.discover(Q.cross_modal(r1[min(2, len(r1))], top_n=3))
    show(f"Q3: tables related to document {r1[min(2, len(r1))]}", r3)

    r4 = engine.discover(Q.pkfk(r3[1], top_n=2))
    show(f"Q4: tables PK-FK-joinable with '{r3[1]}'", r4)

    union_source = r4[1] if len(r4) else r3[1]
    r5 = engine.discover(Q.unionable(union_source, top_n=2))
    show(f"Q5: tables unionable with '{union_source}'", r5)

    # The whole Q1 -> Q2 -> Q4 chain is also ONE pipelined query: each hop
    # feeds the previous stage's top hit into the next operator. The same
    # query in the paper's string syntax parses to an identical AST.
    chain = (Q.content_search("thymidylate synthase", k=3)
               .cross_modal(top_n=3)
               .pkfk(top_n=2))
    show("Q1->Q2->Q4 as one pipelined SRQL query", engine.discover(chain))
    print("\nThe same query as an SRQL string:")
    print("  SELECT * FROM lake WHERE content_search('thymidylate synthase',"
          " k=3)\n      THEN crossModal_search(top_n=3) THEN pkfk(top_n=2)")

    # Migration note — the pre-SRQL imperative calls still work and return
    # identical results; discover() is the blessed entrypoint:
    #   engine.content_search("thymidylate synthase", mode="text", k=3)
    #   engine.cross_modal_search(doc_id, top_n=3)
    #   engine.pkfk(table, top_n=2); engine.unionable(table, top_n=2)

    # Living lakes — when tables/documents churn, don't refit: open a
    # mutable session instead (see examples/incremental_lake.py):
    #   session = repro.open_lake(lake)
    #   session.add_table(new_table); session.discover(...)  # no refit

    # Big lakes — partition into independently-fitted shards behind the
    # same surface (see examples/sharded_lake.py): mutations route to the
    # owning shard, queries scatter-gather into one global top-k, and
    # global_stats=True keeps keyword scores byte-equal to one big fit:
    #   session = repro.open_lake(lake, shards=4, global_stats=True)
    #   session.discover(Q.joinable("drugs", top_n=2))

    # Durable lakes — fit once, save, reopen later without refitting
    # (see examples/persistent_lake.py): save() writes one SQLite catalog
    # per shard; open_lake(path) rebuilds the exact session, and mutations
    # journal to disk so even an unsaved close replays on reopen:
    #   session = repro.open_lake(lake)
    #   session.save("pharma.catalog")
    #   ... later, another process ...
    #   session = repro.open_lake("pharma.catalog")   # no refit

    # Served lakes — concurrent readers + a live writer behind one server
    # (see examples/serving_lake.py): queries pin a generation snapshot
    # (zero torn reads), per-shard partials cache until a mutation bumps
    # the owning shard, and backend="process" runs one worker process per
    # shard over a saved catalog:
    #   server = session.serve()                    # thread backend
    #   server = session.serve(backend="process")   # after session.save()
    #   server.discover(Q.joinable("drugs", top_n=2)); server.close()
    # The process backend is fault tolerant: a crashed or hung worker is
    # respawned inside the next read that needs it (catalog reopen +
    # journal replay, back to the exact pre-crash state), with timeouts,
    # retries, and backoff knobs on the constructor; degraded="partial"
    # returns partial top-k (stats.degraded_shards says what's missing)
    # instead of raising ShardUnavailable when a shard stays down.

    gt = generated.ground_truth("doc_to_table")
    relevant = gt.relevant(r1[1])
    if relevant:
        # The lake also contains projection-derived tables (dbsyn_*); a hit
        # on a derivative of a true table counts for its base.
        def canonical(table: str) -> str:
            if table.startswith("dbsyn_"):
                return table.removeprefix("dbsyn_").rsplit("_", 1)[0]
            return table

        hits = {canonical(t) for t in r2.ids()} & relevant
        print(f"\nGround truth check for Q2: {len(hits)}/{len(r2)} returned "
              f"tables are true links ({sorted(hits)})")


if __name__ == "__main__":
    main()
